// Slotted message fabric, arena-backed.
//
// The VMAT protocol is interval-synchronous: within a slot every node may
// transmit to neighbors, and everything transmitted in slot t is available
// in the receiver's inbox during slot t (delivery within the slot, matching
// the paper's clock-guard-band argument). `end_slot()` moves transmissions
// to inboxes and starts the next slot.
//
// Delivery order within a slot is the global send order. Protocol phase
// drivers always let the adversary transmit *first* in each slot, which is
// the pessimistic race model choking attacks need (a spurious veto beats a
// legitimate veto into a one-time-flood inbox).
//
// Memory model: payloads are copied once, into a per-slot bump arena, at
// send time; everything downstream sees `span`s into that arena. Two arenas
// rotate: the collection arena receives this slot's sends, and at
// end_slot() it becomes the delivery arena while the previous delivery
// arena is reset (capacity kept) and starts collecting. So a delivered
// Frame's payload span is valid for exactly one delivery slot — until the
// *next* end_slot(). Inboxes are CSR-style index ranges over one flat frame
// table (a stable counting sort of the slot's frames by destination), so a
// whole execution performs O(1) steady-state allocations no matter how many
// frames fly. Frames not drained within their delivery slot are discarded;
// every phase driver drains every inbox every slot.
//
// An optional per-node per-slot transmit budget models the limited relaying
// capacity that choking attacks exhaust; sends beyond it are dropped and
// counted.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "crypto/mac.h"
#include "sim/topology.h"
#include "trace/trace.h"
#include "util/bytes.h"
#include "util/error.h"
#include "util/ids.h"

namespace vmat {

class SnapshotReader;
class SnapshotWriter;

/// A unicast frame handed to the fabric for transmission: payload plus the
/// edge-key MAC that authenticates it hop-by-hop. `from` is a *claim* —
/// only the edge MAC constrains who could have produced the frame. The
/// fabric copies the payload into its slot arena; the Envelope itself is
/// not retained.
struct Envelope {
  NodeId from;
  NodeId to;
  KeyIndex edge_key{kNoKey};
  Mac edge_mac;
  Bytes payload;
};

/// A delivered frame: same wire fields, but the payload is a span into the
/// fabric's delivery arena — valid until the next end_slot()/reset(). Copy
/// the bytes out (e.g. into a Bytes) to keep them longer.
struct Frame {
  NodeId from;
  NodeId to;
  KeyIndex edge_key{kNoKey};
  Mac edge_mac;
  std::span<const std::uint8_t> payload;
};

/// Per-frame wire overhead: from/to ids (4+4), edge key index (4), and the
/// 8-byte truncated edge MAC. The ONE frame-size definition every byte
/// counter in the repo (fabric accounting, trace counters, summarize()'s
/// KB figures, table_comm_cost) derives from.
inline constexpr std::size_t kFrameOverheadBytes = 20;

/// Fabric allocation policy. Resident (the historical behavior) keeps every
/// arena chunk and frame-table capacity for the life of the run — fastest,
/// but the high-water mark of the biggest slot stays resident forever.
/// Streaming retires a slot's payload chunks and frame-table slack as soon
/// as the slot closes, trading per-slot reallocation for a resident
/// footprint that tracks the *current* slot instead of the historical
/// maximum. Purely an allocation policy: frames, delivery order, digests,
/// and trace streams are bit-identical in both modes, so the mode is not
/// part of the deployment fingerprint and snapshots restore across modes.
enum class MemoryMode : std::uint8_t { kAuto, kResident, kStreaming };

/// kAuto resolves to streaming at or above this many nodes: below it the
/// retained arenas are small change; above it they are the difference
/// between n=250k fitting comfortably and not.
inline constexpr std::uint32_t kStreamingAutoThreshold = 50000;

/// Reporting convention: 1 KB = 1000 bytes (decimal, not KiB), everywhere.
inline constexpr double kBytesPerKb = 1000.0;

/// Wire size of a frame.
[[nodiscard]] inline std::size_t frame_size(const Envelope& e) noexcept {
  return kFrameOverheadBytes + e.payload.size();
}
[[nodiscard]] inline std::size_t frame_size(const Frame& f) noexcept {
  return kFrameOverheadBytes + f.payload.size();
}

/// Chunked bump allocator for one slot's payload bytes. Chunks are never
/// freed by reset(), only rewound, so steady-state slots allocate nothing;
/// addresses are stable (growth adds chunks, never moves old ones).
class SlotArena {
 public:
  /// Copy `bytes` into the arena; the returned span stays valid until
  /// reset().
  [[nodiscard]] std::span<const std::uint8_t> store(
      std::span<const std::uint8_t> bytes);

  /// Rewind to empty, keeping every chunk's capacity.
  void reset() noexcept;

  /// Rewind to empty and free every chunk (streaming mode's per-slot
  /// retirement; the next store() starts growing from scratch).
  void release() noexcept;

  [[nodiscard]] std::size_t capacity() const noexcept;
  [[nodiscard]] std::size_t used() const noexcept { return used_; }

 private:
  struct Chunk {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size{0};
    std::size_t fill{0};
  };
  std::vector<Chunk> chunks_;
  std::size_t active_{0};
  std::size_t used_{0};
};

class Fabric {
 public:
  explicit Fabric(const Topology* topology,
                  std::size_t capacity_per_slot =
                      std::numeric_limits<std::size_t>::max());

  /// Enable lossy links: every frame is independently lost with the given
  /// probability (deterministic per seed). The transmitter still pays for
  /// the frame (radio energy is spent whether or not anyone hears it).
  /// Probability must lie in [0, 1); out-of-domain values are rejected
  /// with ErrorCode::kInvalidArgument and leave the fabric unchanged.
  [[nodiscard]] Status set_loss(double probability, std::uint64_t seed);

  [[nodiscard]] std::uint64_t frames_lost() const noexcept { return lost_; }

  /// Attach (or detach, with a default-constructed handle) the flight
  /// recorder: send/deliver/drop/loss events and per-phase byte counters.
  void set_tracer(Tracer tracer) noexcept { tracer_ = tracer; }

  /// Switch the streaming allocation policy on or off (see MemoryMode).
  /// Takes effect at the next end_slot()/reset(); never changes behavior,
  /// only where payload bytes live and for how long.
  void set_streaming(bool on) noexcept { streaming_ = on; }
  [[nodiscard]] bool streaming() const noexcept { return streaming_; }

  /// Queue a frame for delivery this slot. Returns false (and drops the
  /// frame) if the sender exhausted its transmit budget, or the (from, to)
  /// pair is not a physical edge. Malicious senders are subject to physics
  /// too: they can only reach their own neighbors. The span overload sends
  /// `payload` in place of envelope.payload (replay loops keep payloads in
  /// flat buffers instead of per-envelope heap Bytes).
  bool send(const Envelope& envelope);
  bool send(const Envelope& envelope, std::span<const std::uint8_t> payload);

  /// Like send, but `actual_sender` does the transmitting (and pays the
  /// budget) while the envelope may claim any `from` — source spoofing.
  bool send_as(NodeId actual_sender, const Envelope& envelope);
  bool send_as(NodeId actual_sender, const Envelope& envelope,
               std::span<const std::uint8_t> payload);

  /// Close the current slot: queued frames become receivable (and frames
  /// from the previous slot that were never drained are discarded).
  void end_slot();

  /// Drain a node's inbox: the frames delivered to it at the last
  /// end_slot(), in delivery order. The returned span (and each frame's
  /// payload span) is valid until the next end_slot()/reset(). Safe to call
  /// concurrently for *distinct* nodes.
  [[nodiscard]] std::span<const Frame> take_inbox(NodeId node);

  /// Discard everything in flight and all inboxes (phase boundary).
  void reset();

  // --- accounting ---
  [[nodiscard]] std::uint64_t bytes_sent(NodeId node) const;
  [[nodiscard]] std::uint64_t bytes_received(NodeId node) const;
  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return total_bytes_; }
  [[nodiscard]] std::uint64_t frames_dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::uint64_t frames_sent() const noexcept { return frames_sent_; }

  /// Combined chunk capacity of both payload arenas (tests assert reuse:
  /// capacity must not shrink across slots).
  [[nodiscard]] std::size_t arena_capacity() const noexcept {
    return arenas_[0].capacity() + arenas_[1].capacity();
  }
  /// Bytes currently parked in the collection arena (this slot's sends).
  [[nodiscard]] std::size_t collect_arena_used() const noexcept {
    return arenas_[collect_].used();
  }

  [[nodiscard]] const Topology& topology() const noexcept { return *topology_; }

  // --- snapshots (sim/snapshot.h) ---

  /// Serialize the fabric's mutable state: loss RNG position, counters,
  /// per-slot budgets, and every in-flight frame (staged and undrained
  /// delivered) with its payload bytes.
  void snapshot_save(SnapshotWriter& writer) const;
  /// Restore a snapshot_save() image. Arenas are rewound (capacity kept)
  /// and payload bytes re-enter them through store(), so a steady-state
  /// restore allocates nothing; delivered frames are re-packed compacted,
  /// which take_inbox() cannot distinguish from the original layout.
  void snapshot_load(SnapshotReader& reader);
  /// Fold the fabric's *configuration* (slot capacity, loss probability)
  /// into a deployment fingerprint.
  [[nodiscard]] std::uint64_t config_fingerprint(std::uint64_t h) const noexcept;

 private:
  // Immutable deployment identity (fingerprinted, not serialized).
  // vmat-analyze: allow(snapshot-field-coverage) -- fingerprint-pinned
  const Topology* topology_;
  // Trace sink handle, owned by the coordinator, not execution state.
  // vmat-analyze: allow(snapshot-field-coverage) -- trace sink, not state
  Tracer tracer_;
  // Construction-time config, covered by config_fingerprint().
  // vmat-analyze: allow(snapshot-field-coverage) -- fingerprint-pinned
  std::size_t capacity_per_slot_;
  // vmat-analyze: allow(snapshot-field-coverage) -- fingerprint-pinned
  double loss_probability_{0.0};
  // Allocation policy only (bit-identical either way), so neither
  // serialized nor fingerprinted: snapshots restore across modes.
  // vmat-analyze: allow(snapshot-field-coverage) -- allocation policy
  bool streaming_{false};
  std::uint64_t loss_rng_state_{0};
  std::uint64_t lost_{0};
  std::vector<std::size_t> sent_this_slot_;

  // Double-buffered payload arenas: arenas_[collect_] takes this slot's
  // sends; the other holds the open delivery slot's payloads.
  SlotArena arenas_[2];
  std::size_t collect_{0};

  // Flat frame tables. staged_ accumulates sends in global send order;
  // end_slot() counting-sorts it (stably) by destination into delivered_,
  // whose per-node ranges are inbox_begin_/inbox_end_. take_inbox() marks a
  // range drained by collapsing begin onto end.
  std::vector<Frame> staged_;
  std::vector<Frame> delivered_;
  std::vector<std::uint32_t> inbox_begin_;
  std::vector<std::uint32_t> inbox_end_;
  // Counting-sort scratch, fully rewritten by every end_slot().
  // vmat-analyze: allow(snapshot-field-coverage) -- transient scratch
  std::vector<std::uint32_t> sort_pos_;

  std::vector<std::uint64_t> bytes_sent_;
  std::vector<std::uint64_t> bytes_received_;
  std::uint64_t total_bytes_{0};
  std::uint64_t dropped_{0};
  std::uint64_t frames_sent_{0};
};

}  // namespace vmat
