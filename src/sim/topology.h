// Physical network topologies for the simulator.
//
// A topology is an undirected graph over nodes 0..n-1; node 0 is the base
// station. Generators cover the shapes used by the paper's discussion and
// our benches: random geometric graphs (the standard sensor deployment
// model), grids, lines (worst-case depth), and a star-of-chains (controlled
// L with controlled branching).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "util/ids.h"

namespace vmat {

class Predistribution;

class Topology {
 public:
  explicit Topology(std::uint32_t node_count);

  [[nodiscard]] std::uint32_t node_count() const noexcept {
    return static_cast<std::uint32_t>(adj_.size());
  }

  /// Add an undirected edge (idempotent; self-loops rejected).
  void add_edge(NodeId a, NodeId b);

  [[nodiscard]] bool has_edge(NodeId a, NodeId b) const noexcept;
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId node) const;
  [[nodiscard]] std::size_t degree(NodeId node) const;
  [[nodiscard]] std::size_t edge_count() const noexcept;

  /// BFS depth of every node from the base station, skipping nodes in
  /// `excluded` (used for "depth excluding all malicious sensors",
  /// Section III). Unreachable or excluded nodes get kNoLevel.
  [[nodiscard]] std::vector<Level> bfs_depth(
      const std::unordered_set<NodeId>& excluded = {}) const;

  /// Maximum finite BFS depth — the paper's L (excluding `excluded`).
  [[nodiscard]] Level depth(
      const std::unordered_set<NodeId>& excluded = {}) const;

  /// True if every non-excluded node is reachable from the base station
  /// through non-excluded nodes.
  [[nodiscard]] bool connected(
      const std::unordered_set<NodeId>& excluded = {}) const;

  /// The subgraph keeping only edges whose endpoints share a pool key —
  /// the communicable ("secure") topology under key predistribution.
  [[nodiscard]] Topology secure_subgraph(const Predistribution& keys) const;

  // --- generators ---

  /// Chain 0-1-2-...-(n-1): depth n-1, the worst case for L.
  [[nodiscard]] static Topology line(std::uint32_t n);

  /// width x height grid; base station at a corner.
  [[nodiscard]] static Topology grid(std::uint32_t width,
                                     std::uint32_t height);

  /// `branches` chains of length `chain_length` all rooted at the base
  /// station: L = chain_length with n = 1 + branches * chain_length.
  [[nodiscard]] static Topology star_of_chains(std::uint32_t branches,
                                               std::uint32_t chain_length);

  /// n nodes uniform in the unit square, edge iff distance <= radius; the
  /// base station is the node closest to the center. Retries seeds until
  /// connected (throws after `max_attempts`).
  [[nodiscard]] static Topology random_geometric(std::uint32_t n,
                                                 double radius,
                                                 std::uint64_t seed,
                                                 int max_attempts = 64);

 private:
  std::vector<std::vector<NodeId>> adj_;
};

}  // namespace vmat
