// Physical network topologies for the simulator.
//
// A topology is an undirected graph over nodes 0..n-1; node 0 is the base
// station. Generators cover the shapes used by the paper's discussion and
// our benches: random geometric graphs (the standard sensor deployment
// model), grids, lines (worst-case depth), and a star-of-chains (controlled
// L with controlled branching).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "util/ids.h"

namespace vmat {

class Predistribution;

class Topology {
 public:
  explicit Topology(std::uint32_t node_count);

  [[nodiscard]] std::uint32_t node_count() const noexcept {
    return node_count_;
  }

  /// Add an undirected edge (idempotent; self-loops rejected).
  void add_edge(NodeId a, NodeId b);

  [[nodiscard]] bool has_edge(NodeId a, NodeId b) const noexcept;
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId node) const;
  [[nodiscard]] std::size_t degree(NodeId node) const;
  [[nodiscard]] std::size_t edge_count() const noexcept;

  /// Flatten the per-node adjacency lists into one contiguous CSR array
  /// (neighbor order preserved). Once compacted, neighbors() serves spans
  /// out of the flat array — one allocation for the whole graph and
  /// cache-friendly sweeps for the hot per-slot loops. add_edge()
  /// invalidates the CSR; Fabric construction re-compacts, so every
  /// simulated topology is compact by the time a protocol phase runs.
  /// Must not race with readers: call at single-threaded points only.
  void compact() const;

  [[nodiscard]] bool compacted() const noexcept { return csr_ready_; }

  /// Release the per-node adjacency lists, keeping only the flat CSR form.
  /// For large deployments the nested lists cost ~24 bytes/node of vector
  /// headers on top of a second copy of every neighbor id; once compacted
  /// the CSR serves every read path, so benches at n >= 10^5 shed the
  /// nested form before constructing the network. A later add_edge()
  /// transparently rehydrates the lists from the CSR. Compacts first if
  /// needed; same single-threaded-point contract as compact().
  void shed_adjacency() const;

  /// Sentinel for "no such directed edge" from directed_edge_slot().
  static constexpr std::uint32_t kNoDirectedEdge = 0xffffffffu;

  /// Position of `to` within `from`'s CSR neighbor row, as an index into
  /// the flat neighbor array — a stable dense id for the directed edge
  /// from→to that flat per-edge side tables (e.g. the network's edge-key
  /// cache) can index by. Returns kNoDirectedEdge when the edge is absent
  /// or the topology is not compacted. The scan is linear over one row:
  /// sensor degrees are small, so this beats hashing an edge pair.
  [[nodiscard]] std::uint32_t directed_edge_slot(NodeId from,
                                                 NodeId to) const noexcept;

  /// Size of the flat CSR neighbor array (2x undirected edge count); the
  /// domain of directed_edge_slot(). 0 until compacted.
  [[nodiscard]] std::size_t directed_edge_count() const noexcept {
    return csr_neighbors_.size();
  }

  /// BFS depth of every node from the base station, skipping nodes in
  /// `excluded` (used for "depth excluding all malicious sensors",
  /// Section III). Unreachable or excluded nodes get kNoLevel.
  [[nodiscard]] std::vector<Level> bfs_depth(
      const std::unordered_set<NodeId>& excluded = {}) const;

  /// Maximum finite BFS depth — the paper's L (excluding `excluded`).
  [[nodiscard]] Level depth(
      const std::unordered_set<NodeId>& excluded = {}) const;

  /// True if every non-excluded node is reachable from the base station
  /// through non-excluded nodes.
  [[nodiscard]] bool connected(
      const std::unordered_set<NodeId>& excluded = {}) const;

  /// The subgraph keeping only edges whose endpoints share a pool key —
  /// the communicable ("secure") topology under key predistribution.
  [[nodiscard]] Topology secure_subgraph(const Predistribution& keys) const;

  // --- generators ---

  /// Chain 0-1-2-...-(n-1): depth n-1, the worst case for L.
  [[nodiscard]] static Topology line(std::uint32_t n);

  /// width x height grid; base station at a corner.
  [[nodiscard]] static Topology grid(std::uint32_t width,
                                     std::uint32_t height);

  /// `branches` chains of length `chain_length` all rooted at the base
  /// station: L = chain_length with n = 1 + branches * chain_length.
  [[nodiscard]] static Topology star_of_chains(std::uint32_t branches,
                                               std::uint32_t chain_length);

  /// n nodes uniform in the unit square, edge iff distance <= radius; the
  /// base station is the node closest to the center. Retries seeds until
  /// connected (throws after `max_attempts`).
  [[nodiscard]] static Topology random_geometric(std::uint32_t n,
                                                 double radius,
                                                 std::uint64_t seed,
                                                 int max_attempts = 64);

  /// Connectivity-safe radius for an n-node random geometric deployment.
  /// Up to n = 10^4 this is the historical sparse figure-scale radius
  /// 1.8/sqrt(n) (every committed bench digest at those sizes was measured
  /// with it). Above that, 1.8 falls below the Θ(sqrt(ln n / n))
  /// connectivity threshold of random geometric graphs and no amount of
  /// seed-retrying helps, so the factor widens to 1.15·sqrt(ln n / π) —
  /// ~10% above the threshold, mean degree growing ~ln n as connected RGGs
  /// inherently require.
  [[nodiscard]] static double connected_radius(std::uint32_t n);

  /// Spatial-grid implementation of random_geometric(): buckets nodes into
  /// radius-sized cells so edge discovery is O(n · expected degree) instead
  /// of O(n^2). Produces the *identical* topology (same coordinates, same
  /// edge set, same adjacency order) as the pairwise scan for any input —
  /// random_geometric() delegates here above a size threshold; exposed so
  /// the equivalence is testable.
  [[nodiscard]] static Topology random_geometric_cells(std::uint32_t n,
                                                       double radius,
                                                       std::uint64_t seed,
                                                       int max_attempts = 64);

 private:
  std::uint32_t node_count_{0};
  // Primary adjacency during construction; may be shed once the CSR mirror
  // exists (see shed_adjacency()). Mutable together with the CSR members so
  // the release is expressible through the const Topology& the network
  // layers hold.
  mutable std::vector<std::vector<NodeId>> adj_;
  // CSR mirror of adj_ (flat neighbor array + per-node offsets), built by
  // compact(). Mutable: compact() is a const view change, not a graph
  // change. Reads are lock-free once built; building must be
  // single-threaded (see compact()).
  mutable std::vector<NodeId> csr_neighbors_;
  mutable std::vector<std::uint32_t> csr_offsets_;
  mutable bool csr_ready_{false};
};

}  // namespace vmat
