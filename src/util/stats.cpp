#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace vmat {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept {
  return std::sqrt(variance(xs));
}

namespace {

std::vector<double> sorted_checked(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile of empty span");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile range");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace

double percentile_nearest_rank(std::span<const double> xs, double p) {
  const std::vector<double> sorted = sorted_checked(xs, p);
  if (p == 0.0) return sorted.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank - 1];
}

double percentile_interpolated(std::span<const double> xs, double p) {
  const std::vector<double> sorted = sorted_checked(xs, p);
  if (sorted.size() == 1) return sorted.front();
  const double pos =
      p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

void RunningStats::add(double x) noexcept {
  // min_/max_ start at the +/-inf identities, so no first-sample special
  // case is needed (and none can be forgotten again).
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("TablePrinter: cell count != header count");
  rows_.push_back(cells);
}

namespace {

/// Display width of a cell: UTF-8 code points, not bytes, so cells like
/// the em dash ("—", 3 bytes, 1 column) don't skew the padding.
std::size_t display_width(const std::string& s) noexcept {
  std::size_t w = 0;
  for (const char ch : s)
    if ((static_cast<unsigned char>(ch) & 0xc0) != 0x80) ++w;
  return w;
}

}  // namespace

void TablePrinter::print() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = display_width(headers_[c]);
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], display_width(row[c]));

  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (std::size_t c = 0; c < row.size(); ++c) {
      // Pad by display width: printf's %-*s counts bytes.
      const std::size_t pad = width[c] - display_width(row[c]);
      std::printf(" %s%*s |", row[c].c_str(), static_cast<int>(pad), "");
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::printf("|");
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    for (std::size_t i = 0; i < width[c] + 2; ++i) std::printf("-");
    std::printf("|");
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace vmat
