#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace vmat {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  // Expand the seed through splitmix64 as recommended by the xoshiro
  // authors; guarantees a non-zero state.
  for (auto& word : s_) word = splitmix64(seed);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire-style rejection to avoid modulo bias.
  if (bound == 0) return 0;
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::unit() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::unit_open() noexcept {
  for (;;) {
    const double u = unit();
    if (u > 0.0) return u;
  }
}

double Rng::exponential(double mean) noexcept {
  return -std::log(unit_open()) * mean;
}

bool Rng::bernoulli(double p) noexcept { return unit() < p; }

Rng Rng::fork() noexcept { return Rng((*this)()); }

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n,
                                                           std::uint32_t k) {
  if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
  // Robert Floyd's algorithm: O(k) expected time, independent of n.
  std::unordered_set<std::uint32_t> chosen;
  chosen.reserve(k);
  for (std::uint32_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::uint32_t>(below(j + 1));
    chosen.insert(chosen.contains(t) ? j : t);
  }
  std::vector<std::uint32_t> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace vmat
