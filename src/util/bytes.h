// Byte-buffer serialization used for MAC inputs and on-wire message
// encoding. All integers are encoded little-endian with fixed width so MAC
// inputs are canonical across platforms.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace vmat {

using Bytes = std::vector<std::uint8_t>;

/// Append-only canonical encoder.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void raw(std::span<const std::uint8_t> bytes);
  void str(std::string_view s);  // length-prefixed

  /// Pre-size for `n` further bytes (hot encoders know their exact size).
  void reserve(std::size_t n) { buf_.reserve(buf_.size() + n); }

  [[nodiscard]] const Bytes& bytes() const noexcept { return buf_; }
  [[nodiscard]] Bytes take() noexcept { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Matching decoder. Throws std::out_of_range on truncated input — protocol
/// code treats that as a malformed (spurious) message.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64();
  [[nodiscard]] Bytes raw(std::size_t n);
  /// Allocation-free raw read into a caller buffer (hot decode paths).
  void raw_into(std::span<std::uint8_t> out);
  [[nodiscard]] std::string str();

  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_{0};
};

/// Hex encoding for logs and test vectors.
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> bytes);
[[nodiscard]] Bytes from_hex(std::string_view hex);

}  // namespace vmat
