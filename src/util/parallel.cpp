#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>

namespace vmat {
namespace {

/// Pools whose drain_batch() is live on this thread, innermost last. A
/// plain vector (not a set): nesting depth is tiny and push/pop is exact.
thread_local std::vector<const ThreadPool*> tl_draining;

struct DrainScope {
  explicit DrainScope(const ThreadPool* pool) { tl_draining.push_back(pool); }
  ~DrainScope() { tl_draining.pop_back(); }
};

/// 0 = no override; otherwise the set_intra_execution_threads() value.
std::atomic<std::size_t> g_exec_threads_override{0};

}  // namespace

std::size_t default_thread_count() {
  if (const char* env = std::getenv("VMAT_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) return static_cast<std::size_t>(v);
    return 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::size_t intra_execution_threads() {
  const std::size_t forced = g_exec_threads_override.load(std::memory_order_relaxed);
  if (forced != 0) return forced;
  if (const char* env = std::getenv("VMAT_EXEC_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) return static_cast<std::size_t>(v);
    return 1;
  }
  return default_thread_count();
}

void set_intra_execution_threads(std::size_t threads) {
  g_exec_threads_override.store(threads, std::memory_order_relaxed);
}

std::size_t plan_shards(std::size_t n, std::size_t threads) {
  // Below ~64 items a fork/join costs more than the MACs it spreads; above
  // it, keep every shard at >= 32 items so the deterministic merge stays a
  // rounding error next to the shard work.
  if (threads <= 1 || n < 64) return 1;
  return std::min(threads, n / 32);
}

std::size_t plan_shards(std::size_t n) {
  return plan_shards(n, intra_execution_threads());
}

std::uint64_t trial_seed(std::uint64_t base_seed,
                         std::uint64_t trial_index) noexcept {
  // One splitmix64 step over a stream-head that mixes the trial index in
  // with the golden ratio, so adjacent trials land in unrelated streams.
  std::uint64_t state = base_seed + 0x9e3779b97f4a7c15ULL * (trial_index + 1);
  return splitmix64(state);
}

ThreadPool::ThreadPool(std::size_t threads)
    : nominal_(threads == 0 ? default_thread_count() : threads) {
  workers_.reserve(nominal_ - 1);
  for (std::size_t i = 0; i + 1 < nominal_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    shutting_down_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutting_down_ || (job_ != nullptr && generation_ != seen_generation);
      });
      if (shutting_down_) return;
      seen_generation = generation_;
    }
    drain_batch();
  }
}

bool ThreadPool::draining_on_this_thread() const noexcept {
  return std::find(tl_draining.begin(), tl_draining.end(), this) !=
         tl_draining.end();
}

void ThreadPool::drain_batch() {
  const DrainScope scope(this);
  for (;;) {
    const std::function<void(std::size_t)>* fn;
    std::size_t index;
    {
      std::lock_guard lock(mu_);
      if (job_ == nullptr || next_index_ >= job_n_) return;
      fn = job_;
      index = next_index_++;
      ++in_flight_;
    }
    std::exception_ptr error;
    try {
      (*fn)(index);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mu_);
      if (error && !first_error_) first_error_ = error;
      if (--in_flight_ == 0 && next_index_ >= job_n_) done_cv_.notify_all();
    }
  }
}

void ThreadPool::for_each(std::size_t n,
                          const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (draining_on_this_thread()) {
    // Nested use from inside one of our own tasks: the pool is saturated at
    // the outer level, so run inline. Matches the outer contract: all
    // indices run, the first error is rethrown afterwards.
    std::exception_ptr error;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }
  const std::lock_guard run_lock(run_mu_);
  {
    std::lock_guard lock(mu_);
    job_ = &fn;
    job_n_ = n;
    next_index_ = 0;
    in_flight_ = 0;
    first_error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();
  drain_batch();  // the caller works too
  std::exception_ptr error;
  {
    std::unique_lock lock(mu_);
    done_cv_.wait(lock, [&] { return next_index_ >= job_n_ && in_flight_ == 0; });
    job_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void parallel_for_trials(std::size_t n_trials, std::uint64_t base_seed,
                         const std::function<void(std::size_t, Rng&)>& fn,
                         ThreadPool* pool) {
  if (pool == nullptr) pool = &ThreadPool::shared();
  pool->for_each(n_trials, [&](std::size_t trial) {
    Rng rng(trial_seed(base_seed, trial));
    fn(trial, rng);
  });
}

void for_each_shard(std::size_t n, std::size_t shards, ThreadPool& pool,
                    const std::function<void(std::size_t, std::size_t,
                                             std::size_t)>& fn) {
  if (n == 0) return;
  if (shards <= 1) {
    fn(0, 0, n);
    return;
  }
  shards = std::min(shards, n);
  const std::size_t base = n / shards;
  const std::size_t extra = n % shards;  // first `extra` shards get +1
  pool.for_each(shards, [&fn, base, extra](std::size_t shard) {
    const std::size_t begin =
        shard * base + std::min(shard, extra);
    const std::size_t end = begin + base + (shard < extra ? 1 : 0);
    fn(shard, begin, end);
  });
}

}  // namespace vmat
