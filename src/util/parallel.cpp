#include "util/parallel.h"

#include <cstdlib>
#include <string>

namespace vmat {

std::size_t default_thread_count() {
  if (const char* env = std::getenv("VMAT_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) return static_cast<std::size_t>(v);
    return 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::uint64_t trial_seed(std::uint64_t base_seed,
                         std::uint64_t trial_index) noexcept {
  // One splitmix64 step over a stream-head that mixes the trial index in
  // with the golden ratio, so adjacent trials land in unrelated streams.
  std::uint64_t state = base_seed + 0x9e3779b97f4a7c15ULL * (trial_index + 1);
  return splitmix64(state);
}

ThreadPool::ThreadPool(std::size_t threads)
    : nominal_(threads == 0 ? default_thread_count() : threads) {
  workers_.reserve(nominal_ - 1);
  for (std::size_t i = 0; i + 1 < nominal_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    shutting_down_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutting_down_ || (job_ != nullptr && generation_ != seen_generation);
      });
      if (shutting_down_) return;
      seen_generation = generation_;
    }
    drain_batch();
  }
}

void ThreadPool::drain_batch() {
  for (;;) {
    const std::function<void(std::size_t)>* fn;
    std::size_t index;
    {
      std::lock_guard lock(mu_);
      if (job_ == nullptr || next_index_ >= job_n_) return;
      fn = job_;
      index = next_index_++;
      ++in_flight_;
    }
    std::exception_ptr error;
    try {
      (*fn)(index);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mu_);
      if (error && !first_error_) first_error_ = error;
      if (--in_flight_ == 0 && next_index_ >= job_n_) done_cv_.notify_all();
    }
  }
}

void ThreadPool::for_each(std::size_t n,
                          const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  {
    std::lock_guard lock(mu_);
    job_ = &fn;
    job_n_ = n;
    next_index_ = 0;
    in_flight_ = 0;
    first_error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();
  drain_batch();  // the caller works too
  std::exception_ptr error;
  {
    std::unique_lock lock(mu_);
    done_cv_.wait(lock, [&] { return next_index_ >= job_n_ && in_flight_ == 0; });
    job_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void parallel_for_trials(std::size_t n_trials, std::uint64_t base_seed,
                         const std::function<void(std::size_t, Rng&)>& fn,
                         ThreadPool* pool) {
  if (pool == nullptr) pool = &ThreadPool::shared();
  pool->for_each(n_trials, [&](std::size_t trial) {
    Rng rng(trial_seed(base_seed, trial));
    fn(trial, rng);
  });
}

}  // namespace vmat
