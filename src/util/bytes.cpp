#include "util/bytes.h"

#include <algorithm>

namespace vmat {

void ByteWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::u32(std::uint32_t v) {
  std::uint8_t le[4];
  for (int i = 0; i < 4; ++i) le[i] = static_cast<std::uint8_t>(v >> (8 * i));
  buf_.insert(buf_.end(), le, le + 4);
}

void ByteWriter::u64(std::uint64_t v) {
  std::uint8_t le[8];
  for (int i = 0; i < 8; ++i) le[i] = static_cast<std::uint8_t>(v >> (8 * i));
  buf_.insert(buf_.end(), le, le + 8);
}

void ByteWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void ByteWriter::raw(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteReader::need(std::size_t n) const {
  if (remaining() < n) throw std::out_of_range("ByteReader: truncated input");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{data_[pos_++]} << (8 * i);
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{data_[pos_++]} << (8 * i);
  return v;
}

std::int64_t ByteReader::i64() { return static_cast<std::int64_t>(u64()); }

Bytes ByteReader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

void ByteReader::raw_into(std::span<std::uint8_t> out) {
  need(out.size());
  std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(pos_), out.size(),
              out.begin());
  pos_ += out.size();
}

std::string ByteReader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

std::string to_hex(std::span<const std::uint8_t> bytes) {
  static constexpr char digits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

namespace {
int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("from_hex: bad digit");
}
}  // namespace

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw std::invalid_argument("from_hex: odd length");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2)
    out.push_back(static_cast<std::uint8_t>(hex_value(hex[i]) * 16 +
                                            hex_value(hex[i + 1])));
  return out;
}

}  // namespace vmat
