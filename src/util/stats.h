// Small statistics helpers used by the benchmark harnesses and the
// statistical property tests (Figure 7 / Figure 8 reproduction).
//
// Together with core/report, this is the sanctioned stdout sink for
// library code: vmat-lint's stdout-in-src rule bans direct std::cout /
// printf everywhere else under src/.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace vmat {

[[nodiscard]] double mean(std::span<const double> xs) noexcept;
[[nodiscard]] double variance(std::span<const double> xs) noexcept;
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// p in [0, 100]. Uses the nearest-rank method on a sorted copy, matching
/// the paper's "x percentile: x% of all trials have an error below that
/// value" reading: p == 0 returns the minimum, p == 100 the maximum, and a
/// single-element span returns that element for every p. Throws
/// std::invalid_argument on an empty span or p outside [0, 100].
///
/// Nearest-rank is a step function: below 1/n samples every p above
/// (n-1)/n collapses to the maximum (p95 of 10 samples IS the max). The
/// long-standing BENCH_*.json fields (min_ms / p95_ms / max_ms) and the
/// figure-8 error tables keep this reading deliberately; latency reporting
/// with small sample counts wants percentile_interpolated() instead.
[[nodiscard]] double percentile_nearest_rank(std::span<const double> xs,
                                             double p);

/// p in [0, 100]. Linear interpolation between closest ranks (the
/// C = 1 / "exclusive of endpoints" convention used by numpy's default
/// quantile): the sorted sample i (0-based) sits at percentile
/// 100 * i / (n - 1), and p between two samples interpolates linearly.
/// p == 0 returns the minimum, p == 100 the maximum. Unlike nearest-rank,
/// p95 of a small sample does not silently collapse to the max — this is
/// the variant the serving-latency reports use. Throws
/// std::invalid_argument on an empty span or p outside [0, 100].
[[nodiscard]] double percentile_interpolated(std::span<const double> xs,
                                             double p);

/// Incremental accumulator for long-running sweeps.
///
/// Empty-accumulator contract: min() is +inf and max() is -inf before the
/// first add() — the identity elements, so merging or comparing against an
/// empty accumulator is well defined. (They used to initialise to 0.0,
/// which silently clamped all-positive minima and all-negative maxima.)
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

/// Fixed-width table printer for the figure/table benches so every harness
/// emits the same layout the paper's tables use.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(const std::vector<std::string>& cells);
  void print() const;

  /// Format helper: fixed precision double.
  [[nodiscard]] static std::string fmt(double v, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vmat
