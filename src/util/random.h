// Deterministic random number generation.
//
// Every stochastic component of the library (topology generation, key-ring
// sampling, adversary placement, synopsis noise in tests) draws from a Rng
// seeded explicitly, so any run is reproducible from one 64-bit seed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace vmat {

/// splitmix64: used to expand one seed into independent stream seeds.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** deterministic generator. Satisfies
/// std::uniform_random_bit_generator, so it composes with <random>
/// distributions, though the library mostly uses the convenience helpers
/// below to avoid implementation-defined distribution behaviour.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~std::uint64_t{0};
  }

  result_type operator()() noexcept;

  /// Uniform integer in [0, bound), bound > 0. Unbiased (rejection method).
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in (0, 1) — never returns exactly 0 or 1, so it is safe
  /// to feed into -log(u).
  [[nodiscard]] double unit_open() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double unit() noexcept;

  /// Exponential with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) noexcept;

  /// True with probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Derive an independent child generator (for per-node / per-trial
  /// streams).
  [[nodiscard]] Rng fork() noexcept;

  /// Sample k distinct integers from [0, n) using Robert Floyd's algorithm.
  /// Result is sorted. Requires k <= n.
  [[nodiscard]] std::vector<std::uint32_t> sample_without_replacement(
      std::uint32_t n, std::uint32_t k);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = below(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace vmat
