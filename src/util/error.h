// Typed error reporting for the public API surface.
//
// Protocol outcomes (result vs. revocation) are NOT errors — they are the
// Theorem 7 disjunction and stay in ExecutionOutcome. Error/Expected cover
// the boundary cases around them: invalid specs, rejected submissions,
// exhausted budgets. Public entry points that used to throw
// std::invalid_argument for recoverable caller mistakes return
// Expected<T> instead; constructors (which cannot return) validate via
// SimulationSpec::validate() and only throw on contract violations.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace vmat {

enum class ErrorCode : std::uint8_t {
  kInvalidArgument,    ///< a parameter outside its documented domain
  kInvalidSpec,        ///< SimulationSpec::validate() failure
  kQueueFull,          ///< engine admission control rejected the submission
  kDeadlineExceeded,   ///< per-query attempt budget exhausted (engine)
  kBudgetExhausted,    ///< engine-wide round budget exhausted
  kDisrupted,          ///< execution ended in revocation, not a result
  kUnavailable,        ///< no data: e.g. MIN over an empty population
};

[[nodiscard]] constexpr const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid-argument";
    case ErrorCode::kInvalidSpec: return "invalid-spec";
    case ErrorCode::kQueueFull: return "queue-full";
    case ErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case ErrorCode::kBudgetExhausted: return "budget-exhausted";
    case ErrorCode::kDisrupted: return "disrupted";
    case ErrorCode::kUnavailable: return "unavailable";
  }
  return "?";
}

struct Error {
  ErrorCode code{ErrorCode::kInvalidArgument};
  std::string message;

  [[nodiscard]] std::string to_string() const {
    std::string out = vmat::to_string(code);
    if (!message.empty()) {
      out += ": ";
      out += message;
    }
    return out;
  }

  friend bool operator==(const Error&, const Error&) = default;
};

/// Minimal Expected: a value or an Error. No exceptions on the happy path;
/// value() on an error (or error() on a value) is a programming bug and
/// terminates via the std::optional contract.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}  // NOLINT(*-explicit-*)
  Expected(Error error) : error_(std::move(error)) {}  // NOLINT(*-explicit-*)

  [[nodiscard]] bool has_value() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return has_value(); }

  [[nodiscard]] const T& value() const { return value_.value(); }
  [[nodiscard]] T& value() { return value_.value(); }
  [[nodiscard]] const T& operator*() const { return value_.value(); }

  [[nodiscard]] const Error& error() const { return error_.value(); }

  [[nodiscard]] T value_or(T fallback) const {
    return has_value() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  std::optional<Error> error_;
};

/// Expected<void>: success, or an Error explaining why not.
template <>
class [[nodiscard]] Expected<void> {
 public:
  Expected() = default;
  Expected(Error error) : error_(std::move(error)) {}  // NOLINT(*-explicit-*)

  [[nodiscard]] bool has_value() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return has_value(); }

  [[nodiscard]] const Error& error() const { return error_.value(); }

 private:
  std::optional<Error> error_;
};

using Status = Expected<void>;

}  // namespace vmat
