// Strong identifier types shared across the VMAT library.
//
// Sensor ids, key indices, levels, and intervals are all small integers in
// the paper; giving each its own type prevents the classic "passed a level
// where a key index was expected" class of bugs in the pinpointing binary
// searches.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace vmat {

/// Identifier of a sensor. The base station is always sensor 0.
struct NodeId {
  std::uint32_t value{0};

  friend constexpr auto operator<=>(NodeId, NodeId) = default;
};

/// The base station's reserved id.
inline constexpr NodeId kBaseStation{0};

/// Index of a symmetric key in the global Eschenauer-Gligor key pool.
struct KeyIndex {
  std::uint32_t value{0};

  friend constexpr auto operator<=>(KeyIndex, KeyIndex) = default;
};

/// Sentinel for "no key" (e.g. the vetoer end of an audit trail).
inline constexpr KeyIndex kNoKey{std::numeric_limits<std::uint32_t>::max()};

/// Level of a sensor on the aggregation tree (base station = 0).
using Level = std::int32_t;

/// Sentinel for "no level assigned" (sensor missed the tree-formation flood).
inline constexpr Level kNoLevel = -1;

/// Index of a time interval inside a protocol phase, 1-based as in the paper.
using Interval = std::int32_t;

/// A sensor reading / partial aggregation value. MIN queries operate on
/// these. Synopsis-based COUNT/SUM map their exponentials into this domain
/// via a fixed-point encoding (see core/synopsis.h).
using Reading = std::int64_t;

/// Sentinel "no reading seen yet": larger than every legal reading.
inline constexpr Reading kInfinity = std::numeric_limits<Reading>::max();

}  // namespace vmat

template <>
struct std::hash<vmat::NodeId> {
  std::size_t operator()(vmat::NodeId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};

template <>
struct std::hash<vmat::KeyIndex> {
  std::size_t operator()(vmat::KeyIndex k) const noexcept {
    return std::hash<std::uint32_t>{}(k.value);
  }
};
