// Parallel Monte-Carlo trial engine.
//
// A small fixed-size thread pool plus parallel_for_trials(), the harness
// every figure/table bench runs its trials through. The determinism
// contract: each trial gets an independent RNG stream seeded purely from
// (base_seed, trial_index) via trial_seed(), trials write results only
// into per-trial slots, and aggregation happens serially in trial order
// after the join — so results are bit-identical no matter how many threads
// run (VMAT_THREADS=1 and VMAT_THREADS=32 print the same tables).
//
// Tooling backstops the contract: vmat-lint bans raw RNG engines outside
// src/util/random.* (determinism-rng) and default [&]/[=] captures in
// task lambdas handed to for_each()/parallel_for_trials()
// (threadpool-ref-capture) — name every capture so shared state is
// auditable. -DVMAT_SANITIZE=thread + `ctest -L tsan` race-checks the
// pool itself.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/random.h"

namespace vmat {

/// Worker-thread count the shared trial pool uses: the VMAT_THREADS
/// environment variable if set (clamped to >= 1), otherwise
/// std::thread::hardware_concurrency().
[[nodiscard]] std::size_t default_thread_count();

/// Deterministic per-trial seed derived from (base_seed, trial_index) only
/// — never from scheduling — so trial t draws the same stream regardless of
/// which thread runs it or how many trials run concurrently.
[[nodiscard]] std::uint64_t trial_seed(std::uint64_t base_seed,
                                       std::uint64_t trial_index) noexcept;

/// Small fixed-size thread pool. `threads` is the nominal parallelism: the
/// pool spawns threads-1 workers and the calling thread participates in
/// every for_each(), so ThreadPool(1) executes strictly serially on the
/// caller (useful under sanitizers and for debugging).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads = 0);  // 0 -> default_thread_count()
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept { return nominal_; }

  /// Run fn(index) for every index in [0, n), distributed dynamically over
  /// the pool plus the calling thread, and wait for all of them. The first
  /// exception thrown by any fn is rethrown here (remaining indices still
  /// drain). Not reentrant: one for_each at a time per pool.
  void for_each(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Process-wide pool for the trial engine, built lazily with
  /// default_thread_count() threads.
  [[nodiscard]] static ThreadPool& shared();

 private:
  void worker_loop();
  /// Claim-and-run loop shared by workers and the caller.
  void drain_batch();

  std::size_t nominal_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_{nullptr};
  std::size_t job_n_{0};
  std::size_t next_index_{0};
  std::size_t in_flight_{0};
  std::uint64_t generation_{0};
  std::exception_ptr first_error_;
  bool shutting_down_{false};
};

/// Run n_trials independent trials: fn(trial_index, rng) with rng seeded
/// trial_seed(base_seed, trial_index). Uses ThreadPool::shared() unless a
/// pool is supplied. See the header comment for the determinism contract.
void parallel_for_trials(std::size_t n_trials, std::uint64_t base_seed,
                         const std::function<void(std::size_t, Rng&)>& fn,
                         ThreadPool* pool = nullptr);

}  // namespace vmat
