// Parallel Monte-Carlo trial engine.
//
// A small fixed-size thread pool plus parallel_for_trials(), the harness
// every figure/table bench runs its trials through. The determinism
// contract: each trial gets an independent RNG stream seeded purely from
// (base_seed, trial_index) via trial_seed(), trials write results only
// into per-trial slots, and aggregation happens serially in trial order
// after the join — so results are bit-identical no matter how many threads
// run (VMAT_THREADS=1 and VMAT_THREADS=32 print the same tables).
//
// Tooling backstops the contract: vmat-lint bans raw RNG engines outside
// src/util/random.* (determinism-rng) and default [&]/[=] captures in
// task lambdas handed to for_each()/parallel_for_trials()
// (threadpool-ref-capture) — name every capture so shared state is
// auditable. -DVMAT_SANITIZE=thread + `ctest -L tsan` race-checks the
// pool itself.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/random.h"

namespace vmat {

/// Worker-thread count the shared trial pool uses: the VMAT_THREADS
/// environment variable if set (clamped to >= 1), otherwise
/// std::thread::hardware_concurrency().
[[nodiscard]] std::size_t default_thread_count();

/// Deterministic per-trial seed derived from (base_seed, trial_index) only
/// — never from scheduling — so trial t draws the same stream regardless of
/// which thread runs it or how many trials run concurrently.
[[nodiscard]] std::uint64_t trial_seed(std::uint64_t base_seed,
                                       std::uint64_t trial_index) noexcept;

/// Worker-thread count for *intra-execution* parallelism (the level-parallel
/// phase drivers): the VMAT_EXEC_THREADS environment variable if set
/// (clamped to >= 1), otherwise default_thread_count(). Overridable at
/// runtime via set_intra_execution_threads() — benches use that to compare
/// serial vs sharded execution in one process.
[[nodiscard]] std::size_t intra_execution_threads();

/// Override intra_execution_threads() process-wide (0 restores the
/// environment-derived default).
void set_intra_execution_threads(std::size_t threads);

/// How many shards to split `n` per-node work items into: 1 (run inline)
/// when the intra-execution thread count is 1 or n is too small to amortize
/// the fork/join, otherwise at most one shard per thread and at least ~32
/// items per shard. Deterministic in (n, threads) only — never in load —
/// because shard boundaries feed the deterministic-merge contract.
[[nodiscard]] std::size_t plan_shards(std::size_t n, std::size_t threads);
[[nodiscard]] std::size_t plan_shards(std::size_t n);  // intra_execution_threads()

/// Small fixed-size thread pool. `threads` is the nominal parallelism: the
/// pool spawns threads-1 workers and the calling thread participates in
/// every for_each(), so ThreadPool(1) executes strictly serially on the
/// caller (useful under sanitizers and for debugging).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads = 0);  // 0 -> default_thread_count()
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept { return nominal_; }

  /// Run fn(index) for every index in [0, n), distributed dynamically over
  /// the pool plus the calling thread, and wait for all of them. The first
  /// exception thrown by any fn is rethrown here (remaining indices still
  /// drain). Reentrant-safe: a for_each issued from *inside* a pool task
  /// (e.g. a sharded phase driver running within a parallel trial) executes
  /// inline on the calling thread — the pool is already saturated at the
  /// outer level, so nesting degrades to serial instead of deadlocking.
  /// Concurrent top-level for_each calls from distinct threads serialize
  /// against each other.
  void for_each(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Process-wide pool for the trial engine, built lazily with
  /// default_thread_count() threads.
  [[nodiscard]] static ThreadPool& shared();

 private:
  void worker_loop();
  /// Claim-and-run loop shared by workers and the caller.
  void drain_batch();
  /// Is the calling thread currently executing a task of *this* pool?
  [[nodiscard]] bool draining_on_this_thread() const noexcept;

  std::size_t nominal_;
  std::vector<std::thread> workers_;

  /// Serializes top-level for_each() calls (held for the whole batch).
  std::mutex run_mu_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_{nullptr};
  std::size_t job_n_{0};
  std::size_t next_index_{0};
  std::size_t in_flight_{0};
  std::uint64_t generation_{0};
  std::exception_ptr first_error_;
  bool shutting_down_{false};
};

/// Run n_trials independent trials: fn(trial_index, rng) with rng seeded
/// trial_seed(base_seed, trial_index). Uses ThreadPool::shared() unless a
/// pool is supplied. See the header comment for the determinism contract.
void parallel_for_trials(std::size_t n_trials, std::uint64_t base_seed,
                         const std::function<void(std::size_t, Rng&)>& fn,
                         ThreadPool* pool = nullptr);

/// Split [0, n) into `shards` contiguous ranges (sizes differing by at most
/// one, in order) and run fn(shard, begin, end) for each on the pool. With
/// shards <= 1 the single range runs inline with no pool traffic at all —
/// the phase drivers use one code path for serial and parallel execution.
/// Shard boundaries depend only on (n, shards), so a deterministic merge in
/// shard order is a merge in item order.
void for_each_shard(std::size_t n, std::size_t shards, ThreadPool& pool,
                    const std::function<void(std::size_t, std::size_t,
                                             std::size_t)>& fn);

}  // namespace vmat
