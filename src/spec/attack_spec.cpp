#include "spec/attack_spec.h"

#include <exception>

#include "sim/network.h"

namespace vmat {

std::vector<Error> AttackSpec::validate(std::uint32_t nodes) const {
  std::vector<Error> errors;
  if (compromised_ == 0)
    errors.push_back({ErrorCode::kInvalidSpec,
                      "attack.compromised: must compromise at least one "
                      "sensor (use passthrough() for a dormant adversary)"});
  if (nodes > 0 && compromised_ >= nodes)
    errors.push_back(
        {ErrorCode::kInvalidSpec,
         "attack.compromised: must leave at least the base station and one "
         "honest sensor (got " +
             std::to_string(compromised_) + " of " + std::to_string(nodes) +
             " nodes)"});
  return errors;
}

Expected<std::unique_ptr<Adversary>> AttackSpec::build(Network& net) const {
  if (std::vector<Error> errors = validate(net.node_count()); !errors.empty())
    return errors.front();
  try {
    std::unordered_set<NodeId> malicious =
        choose_malicious(net.topology(), compromised_, placement_seed_);
    std::unique_ptr<AdversaryStrategy> strategy;
    if (passthrough_)
      strategy = std::make_unique<NullStrategy>();
    else
      strategy = std::make_unique<campaign::PredicatedStrategy>(
          policy_, when_, strategy_seed_);
    return std::make_unique<Adversary>(&net, std::move(malicious),
                                       std::move(strategy));
  } catch (const std::exception& e) {
    return Error{ErrorCode::kInvalidSpec,
                 std::string("attack placement failed: ") + e.what()};
  }
}

}  // namespace vmat
