#include "spec/simulation_spec.h"

#include <cmath>
#include <stdexcept>

#include "core/synopsis.h"

namespace vmat {
namespace {

bool is_perfect_square(std::uint32_t n) noexcept {
  const auto side = static_cast<std::uint32_t>(std::lround(std::sqrt(n)));
  return side * side == n;
}

}  // namespace

const char* to_string(TopologyKind kind) noexcept {
  switch (kind) {
    case TopologyKind::kGeometric: return "geometric";
    case TopologyKind::kGrid: return "grid";
    case TopologyKind::kLine: return "line";
  }
  return "?";
}

std::optional<TopologyKind> topology_kind_from(std::string_view name) noexcept {
  if (name == "geometric") return TopologyKind::kGeometric;
  if (name == "grid") return TopologyKind::kGrid;
  if (name == "line") return TopologyKind::kLine;
  return std::nullopt;
}

std::uint32_t SimulationSpec::effective_instances() const noexcept {
  if (!epsilon_.has_value()) return instances_;
  const double e = *epsilon_, d = *delta_;
  if (e <= 0.0 || e >= 1.0 || d <= 0.0 || d >= 1.0) return 0;
  return instances_for(e, d);
}

std::vector<Error> SimulationSpec::validate() const {
  std::vector<Error> errors;
  auto bad = [&errors](std::string message) {
    errors.push_back({ErrorCode::kInvalidSpec, std::move(message)});
  };
  if (nodes_ < 2) bad("nodes: need at least a base station and one sensor");
  if (topology_ == TopologyKind::kGrid && !is_perfect_square(nodes_))
    bad("nodes: grid topology needs a perfect square");
  if (topology_ == TopologyKind::kGeometric &&
      !(radius_factor_ > 0.0 && std::isfinite(radius_factor_)))
    bad("radius_factor: must be finite and > 0");
  if (keys_.pool_size == 0) bad("key_pool: pool_size must be >= 1");
  if (keys_.ring_size == 0) bad("key_pool: ring_size must be >= 1");
  if (keys_.ring_size > keys_.pool_size)
    bad("key_pool: ring_size cannot exceed pool_size");
  if (!(loss_ >= 0.0 && loss_ < 1.0)) bad("loss: probability in [0, 1)");
  if (redundancy_ == 0) bad("redundancy: need at least one copy");
  if (epsilon_.has_value()) {
    const double e = *epsilon_, d = *delta_;
    if (!(e > 0.0 && e < 1.0)) bad("accuracy: require 0 < epsilon < 1");
    if (!(d > 0.0 && d < 1.0)) bad("accuracy: require 0 < delta < 1");
  } else if (instances_ == 0) {
    bad("instances: must be >= 1");
  }
  if (attack_.has_value())
    for (Error& error : attack_->validate(nodes_))
      errors.push_back(std::move(error));
  return errors;
}

Expected<std::unique_ptr<Adversary>> SimulationSpec::build_adversary(
    Network& net) const {
  if (!attack_.has_value())
    return Error{ErrorCode::kUnavailable,
                 "build_adversary: no attack section declared (call "
                 "spec.attack() first)"};
  return attack_->build(net);
}

Status SimulationSpec::check() const {
  auto errors = validate();
  if (errors.empty()) return {};
  return std::move(errors.front());
}

Topology SimulationSpec::build_topology() const {
  const auto errors = validate();
  if (!errors.empty()) {
    std::string msg = "SimulationSpec::build_topology: invalid spec";
    for (const Error& e : errors) {
      msg += "\n  ";
      msg += e.to_string();
    }
    throw std::invalid_argument(msg);
  }
  switch (topology_) {
    case TopologyKind::kGrid: {
      const auto side =
          static_cast<std::uint32_t>(std::lround(std::sqrt(nodes_)));
      return Topology::grid(side, side);
    }
    case TopologyKind::kLine:
      return Topology::line(nodes_);
    case TopologyKind::kGeometric:
      break;
  }
  const double radius = radius_factor_ / std::sqrt(static_cast<double>(nodes_));
  return Topology::random_geometric(nodes_, radius, seed_);
}

NetworkSpec SimulationSpec::network() const noexcept {
  NetworkSpec net;
  net.keys = keys_;
  net.keys.seed = seed_;
  net.revocation_threshold = theta_;
  net.capacity_per_slot = capacity_;
  net.loss_probability = loss_;
  net.redundancy = redundancy_;
  net.memory_mode = memory_mode_;
  return net;
}

CoordinatorSpec SimulationSpec::coordinator() const noexcept {
  CoordinatorSpec cfg;
  cfg.depth_bound = depth_bound_;
  cfg.tree_mode = tree_mode_;
  cfg.multipath = multipath_;
  cfg.slotted_sof = slotted_sof_;
  cfg.instances = effective_instances();
  cfg.seed = seed_;
  cfg.predicate_mode = predicate_mode_;
  return cfg;
}

}  // namespace vmat
