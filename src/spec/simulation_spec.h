// SimulationSpec — the one validated description of a VMAT deployment.
//
// Everything a simulation needs (topology shape, key predistribution,
// fabric physics, protocol knobs) lives in one builder-style spec:
//
//   vmat::SimulationSpec spec;
//   spec.nodes(400).accuracy(0.35, 0.1).revocation_threshold(27).seed(7);
//   vmat::Network net(spec);
//   vmat::VmatCoordinator coordinator(&net, &adversary, spec);
//   vmat::Engine engine(&coordinator);
//
// validate() returns *typed* errors (util/error.h) for every out-of-domain
// field instead of throwing on first contact; the Network / VmatCoordinator
// / Engine constructors accept a spec directly and fail fast (with the
// joined validation report) if it is invalid.
//
// The spec subsumes the former per-layer config structs — NetworkSpec,
// CoordinatorSpec, KeyMaterialSpec, TreePhaseParams are still the internal
// section types, but public call sites should build one SimulationSpec
// (including its attack() section) and hand it around.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string_view>
#include <vector>

#include "core/coordinator.h"
#include "sim/network.h"
#include "sim/topology.h"
#include "spec/attack_spec.h"
#include "util/error.h"

namespace vmat {

enum class TopologyKind : std::uint8_t { kGeometric, kGrid, kLine };

[[nodiscard]] const char* to_string(TopologyKind kind) noexcept;
/// Parse "geometric" / "grid" / "line"; nullopt for anything else.
[[nodiscard]] std::optional<TopologyKind> topology_kind_from(
    std::string_view name) noexcept;

class SimulationSpec {
 public:
  // --- deployment (builder-style; every setter returns *this) ---

  /// Sensor count including the base station (node 0). Grid topologies
  /// require a perfect square.
  SimulationSpec& nodes(std::uint32_t n) { nodes_ = n; return *this; }
  SimulationSpec& topology(TopologyKind kind) { topology_ = kind; return *this; }
  /// Geometric connectivity: radius = factor / sqrt(nodes). The default
  /// 1.8 gives the sparse deployments the paper's figures use; ~2.4 is a
  /// denser, better-connected field.
  SimulationSpec& radius_factor(double factor) { radius_factor_ = factor; return *this; }
  /// Key predistribution pool size u and ring size r.
  SimulationSpec& key_pool(std::uint32_t pool_size, std::uint32_t ring_size) {
    keys_.pool_size = pool_size;
    keys_.ring_size = ring_size;
    return *this;
  }
  /// θ for full-sensor revocation; 0 disables it.
  SimulationSpec& revocation_threshold(std::uint32_t theta) { theta_ = theta; return *this; }
  SimulationSpec& capacity_per_slot(std::size_t frames) { capacity_ = frames; return *this; }
  /// Per-frame loss probability in [0, 1).
  SimulationSpec& loss(double probability) { loss_ = probability; return *this; }
  /// Blind copies per logical transmission (>= 1).
  SimulationSpec& redundancy(std::uint32_t copies) { redundancy_ = copies; return *this; }
  /// Fabric allocation policy (sim/fabric.h): kAuto (default) turns the
  /// streaming low-memory mode on from kStreamingAutoThreshold nodes up;
  /// kResident / kStreaming force it. Bit-identical results either way.
  SimulationSpec& memory_mode(MemoryMode mode) { memory_mode_ = mode; return *this; }

  // --- protocol ---

  /// Announced depth bound L; 0 = use the physical topology depth.
  SimulationSpec& depth_bound(Level bound) { depth_bound_ = bound; return *this; }
  SimulationSpec& tree_mode(TreeMode mode) { tree_mode_ = mode; return *this; }
  SimulationSpec& multipath(bool on) { multipath_ = on; return *this; }
  SimulationSpec& slotted_sof(bool on) { slotted_sof_ = on; return *this; }
  /// Synopsis instances m for COUNT/SUM (>= 1). Overridden by accuracy().
  SimulationSpec& instances(std::uint32_t m) {
    instances_ = m;
    epsilon_.reset();
    delta_.reset();
    return *this;
  }
  /// Pick instances as instances_for(epsilon, delta): an (ε,δ)-approximate
  /// COUNT/SUM. Overrides instances().
  SimulationSpec& accuracy(double epsilon, double delta) {
    epsilon_ = epsilon;
    delta_ = delta;
    return *this;
  }
  SimulationSpec& predicate_mode(PredicateTestMode mode) { predicate_mode_ = mode; return *this; }
  /// Master seed: topology placement, key material, nonces.
  SimulationSpec& seed(std::uint64_t s) { seed_ = s; return *this; }

  /// The declarative adversary section (spec/attack_spec.h). First call
  /// creates it; chain its builder directly:
  ///   spec.attack().compromised(4).policy({...}).when(predicate);
  AttackSpec& attack() {
    if (!attack_.has_value()) attack_.emplace();
    return *attack_;
  }
  [[nodiscard]] bool has_attack() const noexcept { return attack_.has_value(); }
  /// The attack section, or nullptr when none was declared.
  [[nodiscard]] const AttackSpec* attack_section() const noexcept {
    return attack_.has_value() ? &*attack_ : nullptr;
  }
  /// Place the declared adversary on `net` (kUnavailable error when no
  /// attack section was declared; see AttackSpec::build otherwise).
  [[nodiscard]] Expected<std::unique_ptr<Adversary>> build_adversary(
      Network& net) const;

  // --- getters ---

  [[nodiscard]] std::uint32_t nodes() const noexcept { return nodes_; }
  [[nodiscard]] TopologyKind topology() const noexcept { return topology_; }
  [[nodiscard]] double radius_factor() const noexcept { return radius_factor_; }
  [[nodiscard]] const KeyMaterialSpec& key_material() const noexcept { return keys_; }
  [[nodiscard]] std::uint32_t revocation_threshold() const noexcept { return theta_; }
  [[nodiscard]] double loss() const noexcept { return loss_; }
  [[nodiscard]] std::uint32_t redundancy() const noexcept { return redundancy_; }
  [[nodiscard]] MemoryMode memory_mode() const noexcept { return memory_mode_; }
  [[nodiscard]] Level depth_bound() const noexcept { return depth_bound_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  /// Effective instance count: instances_for(ε,δ) when accuracy() was
  /// called (0 if those parameters are out of domain), instances() otherwise.
  [[nodiscard]] std::uint32_t effective_instances() const noexcept;

  /// Every out-of-domain field, as typed errors. Empty = valid.
  [[nodiscard]] std::vector<Error> validate() const;
  /// First validation error, or success.
  [[nodiscard]] Status check() const;

  // --- section views (the internal per-layer config types) ---

  /// Build the physical topology this spec describes. The spec must be
  /// valid (throws std::invalid_argument otherwise).
  [[nodiscard]] Topology build_topology() const;
  [[nodiscard]] NetworkSpec network() const noexcept;
  [[nodiscard]] CoordinatorSpec coordinator() const noexcept;

 private:
  std::uint32_t nodes_{100};
  TopologyKind topology_{TopologyKind::kGeometric};
  double radius_factor_{1.8};
  KeyMaterialSpec keys_{};
  std::uint32_t theta_{0};
  std::size_t capacity_{std::numeric_limits<std::size_t>::max()};
  double loss_{0.0};
  std::uint32_t redundancy_{1};
  MemoryMode memory_mode_{MemoryMode::kAuto};
  Level depth_bound_{0};
  TreeMode tree_mode_{TreeMode::kTimestamp};
  bool multipath_{false};
  bool slotted_sof_{true};
  std::uint32_t instances_{1};
  std::optional<double> epsilon_;
  std::optional<double> delta_;
  PredicateTestMode predicate_mode_{PredicateTestMode::kReachability};
  std::uint64_t seed_{0x5eed};
  std::optional<AttackSpec> attack_;
};

}  // namespace vmat
