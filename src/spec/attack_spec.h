// AttackSpec — the declarative adversary section of a SimulationSpec.
//
//   vmat::SimulationSpec spec;
//   spec.nodes(100).seed(1);
//   spec.attack()
//       .compromised(4)
//       .policy({.agg = vmat::campaign::AggAction::kInjectJunk})
//       .when(vmat::campaign::AttackPredicate::slot_at_least(1) &&
//             !vmat::campaign::AttackPredicate::slot_at_least(2));
//   vmat::Network net(spec);
//   vmat::Expected<std::unique_ptr<vmat::Adversary>> adversary =
//       spec.attack_section()->build(net);
//
// Malicious placement (choose_malicious under placement_seed, keeping the
// honest subgraph connected), the action policy, and the trigger predicate
// are all data; validate() reports typed errors instead of throwing.
// Building an Adversary by wiring a PolicyStrategy subclass directly is the
// deprecated path — kept for the zoo, but new call sites should describe
// the attack here (see DESIGN.md "Campaign search & predicates").
#pragma once

#include <memory>
#include <vector>

#include "attack/strategies.h"
#include "campaign/predicate.h"
#include "campaign/strategy.h"
#include "util/error.h"

namespace vmat {

class AttackSpec {
 public:
  // --- builder (every setter returns *this) ---

  /// Compromised sensor count, in [1, nodes).
  AttackSpec& compromised(std::uint32_t count) {
    compromised_ = count;
    return *this;
  }
  /// Seed for malicious placement (choose_malicious).
  AttackSpec& placement_seed(std::uint64_t seed) {
    placement_seed_ = seed;
    return *this;
  }
  /// The action genome (what the compromised set does when triggered).
  AttackSpec& policy(const campaign::AttackPolicy& policy) {
    policy_ = policy;
    return *this;
  }
  /// The trigger predicate (when it does it). Default: always.
  AttackSpec& when(campaign::AttackPredicate predicate) {
    when_ = std::move(predicate);
    return *this;
  }
  /// Keyed-predicate-test answer policy (shorthand for policy().lie).
  AttackSpec& lie(LiePolicy policy) {
    policy_.lie = policy;
    return *this;
  }
  /// Seed for the strategy RNG (LiePolicy::kRandom answers).
  AttackSpec& strategy_seed(std::uint64_t seed) {
    strategy_seed_ = seed;
    return *this;
  }
  /// Dormant adversary: compromised sensors behave honestly (the no-attack
  /// control). The policy/predicate are ignored.
  AttackSpec& passthrough(bool on) {
    passthrough_ = on;
    return *this;
  }

  // --- getters ---

  [[nodiscard]] std::uint32_t compromised() const noexcept {
    return compromised_;
  }
  [[nodiscard]] std::uint64_t placement_seed() const noexcept {
    return placement_seed_;
  }
  [[nodiscard]] const campaign::AttackPolicy& policy() const noexcept {
    return policy_;
  }
  [[nodiscard]] const campaign::AttackPredicate& when() const noexcept {
    return when_;
  }
  [[nodiscard]] std::uint64_t strategy_seed() const noexcept {
    return strategy_seed_;
  }
  [[nodiscard]] bool passthrough() const noexcept { return passthrough_; }

  /// Typed validation against the deployment's sensor count. Empty = valid.
  [[nodiscard]] std::vector<Error> validate(std::uint32_t nodes) const;

  /// Place the adversary on `net`: choose_malicious placement + a
  /// PredicatedStrategy from (policy, when, strategy_seed) — or a dormant
  /// NullStrategy under passthrough(). Returns a typed error when the spec
  /// is invalid for this deployment or no connected placement exists.
  [[nodiscard]] Expected<std::unique_ptr<Adversary>> build(Network& net) const;

  friend bool operator==(const AttackSpec&, const AttackSpec&) = default;

 private:
  std::uint32_t compromised_{1};
  std::uint64_t placement_seed_{17};
  campaign::AttackPolicy policy_{};
  campaign::AttackPredicate when_{};
  std::uint64_t strategy_seed_{7};
  bool passthrough_{false};
};

}  // namespace vmat
