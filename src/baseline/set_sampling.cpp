#include "baseline/set_sampling.h"

#include <cmath>
#include <deque>
#include <stdexcept>

#include "crypto/prf.h"

namespace vmat {

SetSamplingProtocol::SetSamplingProtocol(
    Network* net, Adversary* adversary,
    const SetSamplingProtocolConfig& config)
    : net_(net),
      adversary_(adversary),
      config_(config),
      membership_key_(derive_key("vmat.set-sampling", config.key_seed, 0)) {
  if (net == nullptr)
    throw std::invalid_argument("SetSamplingProtocol: null net");
  if (config.tests_per_level == 0)
    throw std::invalid_argument("SetSamplingProtocol: zero tests per level");
}

bool SetSamplingProtocol::is_member(NodeId sensor, std::uint32_t test,
                                    std::uint32_t level) const {
  // Membership probability 2^-(level+1), deterministic per (sensor, test,
  // level) — the pre-distributed set assignment.
  const double u = prf_unit_open(membership_key_, test, sensor.value, level,
                                 /*salt=*/7);
  return u < std::pow(0.5, static_cast<double>(level + 1));
}

bool SetSamplingProtocol::run_test(const std::vector<std::uint8_t>& predicate,
                                   std::uint32_t test, std::uint32_t level) {
  // Gather repliers: honest members whose predicate holds, plus Byzantine
  // members the strategy chooses to answer for (they hold the set key, so
  // their reply verifies — the "own reading" freedom).
  std::vector<NodeId> repliers;
  for (std::uint32_t id = 1; id < net_->node_count(); ++id) {
    const NodeId node{id};
    if (!is_member(node, test, level)) continue;
    if (net_->revocation().is_sensor_revoked(node)) continue;
    if (byzantine(adversary_, node)) {
      Predicate marker;  // carries (test, level) for the strategy
      marker.id_lo = NodeId{test};
      marker.id_hi = NodeId{level};
      if (adversary_->strategy().answer_predicate(adversary_->view(), marker,
                                                  node))
        repliers.push_back(node);
    } else if (predicate[id] != 0) {
      repliers.push_back(node);
    }
  }
  if (repliers.empty()) return false;

  // Verified one-time flood = reachability over the active honest subgraph
  // (same argument as the VMAT predicate test engine).
  const std::uint32_t n = net_->node_count();
  std::vector<bool> reached(n, false);
  std::deque<NodeId> queue;
  reached[kBaseStation.value] = true;
  queue.push_back(kBaseStation);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : net_->topology().neighbors(u)) {
      if (reached[v.value] || byzantine(adversary_, v) ||
          net_->revocation().is_sensor_revoked(v))
        continue;
      reached[v.value] = true;
      queue.push_back(v);
    }
  }
  for (NodeId r : repliers) {
    if (reached[r.value]) return true;
    for (NodeId v : net_->topology().neighbors(r))
      if (reached[v.value]) return true;
  }
  return false;
}

SetSamplingRun SetSamplingProtocol::count(
    const std::vector<std::uint8_t>& predicate) {
  if (predicate.size() != net_->node_count())
    throw std::invalid_argument("SetSamplingProtocol::count: size mismatch");

  const std::uint32_t n = net_->node_count();
  SetSamplingRun run;
  run.levels = n <= 2 ? 1
                      : static_cast<std::uint32_t>(
                            std::ceil(std::log2(static_cast<double>(n))));
  // Levels are sequential; each test costs two flooding rounds but tests
  // within a level batch into one broadcast + one reply phase.
  run.flooding_rounds = static_cast<int>(run.levels) * 2;

  std::vector<double> hit_fraction(run.levels, 0.0);
  for (std::uint32_t level = 0; level < run.levels; ++level) {
    std::uint32_t hits = 0;
    for (std::uint32_t test = 0; test < config_.tests_per_level; ++test)
      if (run_test(predicate, test, level)) ++hits;
    run.positive_tests += hits;
    hit_fraction[level] =
        static_cast<double>(hits) / config_.tests_per_level;
  }

  // Maximum-likelihood count over a log-spaced grid:
  // P(test positive at level ℓ | count c) = 1 - (1 - 2^-(ℓ+1))^c.
  double best_ll = -1e300;
  double best_c = 0.0;
  for (double c = 1.0; c <= static_cast<double>(n) * 1.5; c *= 1.05) {
    double ll = 0.0;
    for (std::uint32_t level = 0; level < run.levels; ++level) {
      const double p = std::pow(0.5, static_cast<double>(level + 1));
      double hit_p = 1.0 - std::pow(1.0 - p, c);
      hit_p = std::min(std::max(hit_p, 1e-9), 1.0 - 1e-9);
      const double f = hit_fraction[level];
      ll += f * std::log(hit_p) + (1.0 - f) * std::log(1.0 - hit_p);
    }
    if (ll > best_ll) {
      best_ll = ll;
      best_c = c;
    }
  }
  run.estimate = run.positive_tests == 0 ? 0.0 : best_c;
  return run;
}

}  // namespace vmat
