#include "baseline/secoa.h"

#include <stdexcept>

#include "util/bytes.h"

namespace vmat {
namespace {

Digest chain_base(const SecoaConfig& config, NodeId sensor) {
  ByteWriter w;
  w.str("secoa.base");
  w.u64(config.seed);
  w.u32(sensor.value);
  return Sha256::hash(w.bytes());
}

Digest hash_forward(Digest d, std::int64_t steps) {
  for (std::int64_t i = 0; i < steps; ++i) d = Sha256::hash(d);
  return d;
}

}  // namespace

Digest secoa_element(const SecoaConfig& config, NodeId sensor,
                     std::int64_t value) {
  if (value < 0 || value > config.max_value)
    throw std::invalid_argument("secoa_element: value out of range");
  return hash_forward(chain_base(config, sensor), config.max_value - value);
}

bool secoa_verify(const SecoaConfig& config, NodeId witness,
                  std::int64_t value, const Digest& element) {
  if (value < 0 || value > config.max_value) return false;
  // The base station knows the seed end; the full chain has V_max steps, so
  // the element at value v must hash forward to the anchor H^Vmax(base).
  const Digest anchor = hash_forward(chain_base(config, witness),
                                     config.max_value);
  return hash_forward(element, value) == anchor;
}

SecoaResult run_secoa_max(const Network& net,
                          const std::vector<std::int64_t>& readings,
                          const std::unordered_set<NodeId>& malicious,
                          SecoaAttack attack, const SecoaConfig& config) {
  const std::uint32_t n = net.node_count();
  const auto depth = net.topology().bfs_depth();

  // Fold the claimed maximum up the BFS tree. Each subtree submits
  // ⟨claim, witness, element⟩; honest nodes keep the largest claim.
  struct Claim {
    std::int64_t value{-1};
    NodeId witness;
    Digest element{};
  };
  std::vector<Claim> submitted(n);  // per node: best claim of its subtree

  std::vector<std::uint32_t> order(n);
  for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return depth[a] > depth[b];
  });

  for (std::uint32_t id : order) {
    if (id == kBaseStation.value || depth[id] == kNoLevel) continue;
    const NodeId self{id};
    Claim best = submitted[id];  // children already folded into here
    // Own contribution.
    if (readings[id] > best.value) {
      best.value = readings[id];
      best.witness = self;
      best.element = secoa_element(config, self, readings[id]);
    }

    if (malicious.contains(self)) {
      switch (attack) {
        case SecoaAttack::kNone:
          break;
        case SecoaAttack::kInflate: {
          best.value = std::min<std::int64_t>(config.max_value,
                                              best.value + 50);
          best.witness = self;
          // It cannot compute the element for a value above its own
          // reading; the best it can do is hand up garbage.
          ByteWriter w;
          w.str("secoa.forged");
          w.u64(static_cast<std::uint64_t>(best.value));
          best.element = Sha256::hash(w.bytes());
          break;
        }
        case SecoaAttack::kDrop:
          best = Claim{};  // suppress the whole subtree's claim
          break;
      }
    }

    // Hand the claim to the BFS parent.
    for (NodeId v : net.topology().neighbors(self)) {
      if (depth[v.value] == depth[id] - 1) {
        if (best.value > submitted[v.value].value) submitted[v.value] = best;
        break;
      }
    }
  }

  SecoaResult result;
  const Claim& final_claim = submitted[kBaseStation.value];
  if (final_claim.value < 0) {
    result.maximum = std::nullopt;
    return result;
  }
  result.witness = final_claim.witness;
  if (secoa_verify(config, final_claim.witness, final_claim.value,
                   final_claim.element)) {
    result.maximum = final_claim.value;
  } else {
    result.verification_failed = true;
  }
  return result;
}

}  // namespace vmat
