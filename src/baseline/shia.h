// SHIA — Secure Hierarchical In-network Aggregation (Chan, Perrig, Song,
// CCS'06), the detect-only baseline class the paper positions VMAT against.
//
// Implemented for SUM (predicate COUNT is the all-ones special case):
//
//  1. *Aggregation-commit*: over the BFS aggregation tree, every sensor
//     builds a commitment vertex
//         ⟨count, value, H(nonce ‖ count ‖ value ‖ child labels ‖ leaf)⟩
//     folding its own leaf ⟨1, reading, id⟩ with its children's vertices,
//     and forwards it to its parent. The base station ends up with a root
//     label committing to the entire aggregation structure.
//  2. *Dissemination*: the base station authenticated-broadcasts the root.
//  3. *Result checking*: every ancestor ships its fold inputs (its own
//     reading plus the per-child labels it actually folded) down to its
//     subtree; each sensor substitutes its *true* label for its own branch
//     and recomputes the chain of vertices up to the root with real
//     SHA-256. The recomputation equals the broadcast root iff every
//     ancestor folded this sensor's true contribution — an ancestor that
//     dropped or rewrote the branch cannot ship consistent inputs without
//     a hash collision.
//  4. *Acknowledgement*: every verified sensor sends MAC_{sensor key}(nonce);
//     the base station accepts the sum only if every sensor acked.
//
// What SHIA gives: a corrupted sum never gets accepted (an alarm is raised
// instead). What it does NOT give — and what this baseline demonstrates —
// is any way to tell *who* cheated: a persistent attacker alarms every
// execution forever.
#pragma once

#include <optional>
#include <unordered_set>

#include "crypto/sha256.h"
#include "sim/network.h"

namespace vmat {

/// A commitment-tree vertex label.
struct ShiaLabel {
  std::uint64_t count{0};
  std::int64_t value{0};
  Digest hash{};

  friend bool operator==(const ShiaLabel&, const ShiaLabel&) = default;
};

enum class ShiaAttack : std::uint8_t {
  kNone,
  kDropChildren,   ///< omit every child's vertex from the fold
  kTamperValue,    ///< rewrite child contributions to zero before folding
  kInflateOwn,     ///< legal self-misreporting (must NOT alarm)
};

struct ShiaResult {
  std::optional<std::int64_t> sum;  ///< set iff all sensors acked
  bool alarmed{false};
  std::size_t missing_acks{0};
  int flooding_rounds{0};
  ShiaLabel root;
};

/// One detect-only SHIA execution.
[[nodiscard]] ShiaResult run_shia_sum(
    const Network& net, const std::vector<std::int64_t>& readings,
    const std::unordered_set<NodeId>& malicious, ShiaAttack attack,
    std::uint64_t nonce);

/// Retry loop: SHIA under a persistent attacker alarms forever.
struct ShiaCampaign {
  std::optional<std::int64_t> sum;
  int executions{0};
  bool stalled{false};
};
[[nodiscard]] ShiaCampaign run_shia_campaign(
    const Network& net, const std::vector<std::int64_t>& readings,
    const std::unordered_set<NodeId>& malicious, ShiaAttack attack,
    std::uint64_t seed, int max_attempts);

/// A child contribution as folded into a vertex: the claimed child id and
/// the label the folder used for that child's subtree.
struct ShiaChildInput {
  NodeId child;
  ShiaLabel label;

  friend bool operator==(const ShiaChildInput&, const ShiaChildInput&) =
      default;
};

/// The commitment fold, exposed for tests: label of a vertex from its leaf
/// reading and its (id-ordered) child inputs.
[[nodiscard]] ShiaLabel shia_fold(std::uint64_t nonce, NodeId self,
                                  std::int64_t reading,
                                  const std::vector<ShiaChildInput>& children);

}  // namespace vmat
