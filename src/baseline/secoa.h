// SECOA-style one-way-chain aggregation (Nath, Yu, Chan, SIGMOD'09) for
// MAX queries — the other detect-only comparator family in Section I.
//
// Every sensor i shares a chain seed with the base station and commits its
// reading v by releasing the chain element at distance (V_max - v) from the
// seed end: e_i(v) = H^(V_max - v)(base_i). Hashing forward *lowers* the
// claimable value, so in-network aggregators (and the adversary) can only
// ever weaken a claim — inflating the maximum would require inverting H.
// The aggregate carried upward is ⟨claimed max M, witness id w, e_w(M)⟩;
// the base station verifies e_w(M) by hashing the witness's base forward.
//
// What this gives: an *inflated* maximum never verifies. What it does not
// give — the gap VMAT fills — is any defence against silently *dropping*
// the true maximum: a smaller, correctly-witnessed value sails through.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>

#include "crypto/sha256.h"
#include "sim/network.h"

namespace vmat {

struct SecoaConfig {
  std::int64_t max_value{256};  ///< V_max: readings live in [0, V_max]
  std::uint64_t seed{1};
};

struct SecoaResult {
  std::optional<std::int64_t> maximum;  ///< set iff the witness verified
  bool verification_failed{false};      ///< inflation caught
  NodeId witness;
  int flooding_rounds{2};
};

enum class SecoaAttack : std::uint8_t {
  kNone,
  kInflate,  ///< claim max+50 with a forged chain element (must be caught)
  kDrop,     ///< suppress the true maximum (goes undetected — the VMAT gap)
};

[[nodiscard]] SecoaResult run_secoa_max(
    const Network& net, const std::vector<std::int64_t>& readings,
    const std::unordered_set<NodeId>& malicious, SecoaAttack attack,
    const SecoaConfig& config);

/// Chain element a sensor releases for value v (exposed for tests).
[[nodiscard]] Digest secoa_element(const SecoaConfig& config, NodeId sensor,
                                   std::int64_t value);

/// Base-station verification of a claimed (witness, value, element).
[[nodiscard]] bool secoa_verify(const SecoaConfig& config, NodeId witness,
                                std::int64_t value, const Digest& element);

}  // namespace vmat
