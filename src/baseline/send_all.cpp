#include "baseline/send_all.h"

#include <algorithm>

namespace vmat {

SendAllResult run_send_all(const Network& net,
                           const std::vector<Reading>& readings) {
  // Each record: 4-byte id + 8-byte reading + 8-byte MAC (the paper's
  // pessimistic assumption uses 8 bytes for the MAC alone).
  constexpr std::uint64_t kRecordBytes = 20;

  const auto depth = net.topology().bfs_depth();
  const std::uint32_t n = net.node_count();

  // subtree_records[v] = number of readings v transmits upward = size of
  // its BFS subtree (itself included, base station excluded).
  std::vector<std::uint32_t> order(n);
  for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return depth[a] > depth[b];
  });

  std::vector<std::uint64_t> subtree_records(n, 0);
  SendAllResult result;
  for (std::uint32_t id : order) {
    if (depth[id] == kNoLevel || id == kBaseStation.value) continue;
    subtree_records[id] += 1;  // own reading
    result.minimum = std::min(result.minimum, readings[id]);
    // Find the BFS parent and push the whole subtree up.
    for (NodeId v : net.topology().neighbors(NodeId{id})) {
      if (depth[v.value] == depth[id] - 1) {
        subtree_records[v.value] += subtree_records[id];
        break;
      }
    }
    const std::uint64_t bytes = subtree_records[id] * kRecordBytes;
    result.total_bytes += bytes;
    result.max_node_bytes = std::max(result.max_node_bytes, bytes);
  }
  result.flooding_rounds = 1;
  return result;
}

}  // namespace vmat
