// Alarm-only secure aggregation — the SHIA-family baseline ([3], [9],
// [19]): it detects a corrupted result (here via VMAT's own MIN+veto
// machinery, which is at least as strong) but has no pinpointing or
// revocation. On an alarm it can only retry; a persistent malicious sensor
// therefore stalls it forever, which is exactly the gap VMAT closes
// (Section I).
#pragma once

#include <optional>

#include "attack/adversary.h"
#include "core/phase_state.h"
#include "sim/network.h"

namespace vmat {

struct AlarmOnlyResult {
  std::optional<Reading> minimum;  ///< set iff no alarm was raised
  bool alarmed{false};
  int flooding_rounds{0};
};

/// One detect-only execution: tree + aggregation + confirmation; any junk
/// or veto raises an alarm and discards the result.
[[nodiscard]] AlarmOnlyResult run_alarm_only(
    Network& net, Adversary* adversary, const std::vector<Reading>& readings,
    Level depth_bound, std::uint64_t seed);

/// Retry until a result or `max_attempts` alarms; returns how many
/// executions were wasted (max_attempts means: stalled forever).
struct AlarmOnlyCampaign {
  std::optional<Reading> minimum;
  int executions{0};
  bool stalled{false};
};
[[nodiscard]] AlarmOnlyCampaign run_alarm_only_campaign(
    Network& net, Adversary* adversary, const std::vector<Reading>& readings,
    Level depth_bound, std::uint64_t seed, int max_attempts);

}  // namespace vmat
