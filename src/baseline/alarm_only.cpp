#include "baseline/alarm_only.h"

#include "core/aggregation.h"
#include "core/confirmation.h"
#include "core/tree_formation.h"
#include "util/random.h"

namespace vmat {

AlarmOnlyResult run_alarm_only(Network& net, Adversary* adversary,
                               const std::vector<Reading>& readings,
                               Level depth_bound, std::uint64_t seed) {
  const std::uint32_t n = net.node_count();
  std::uint64_t nonce_state = seed;

  AlarmOnlyResult result;
  TreePhaseParams tree_params;
  tree_params.mode = TreeMode::kTimestamp;
  tree_params.depth_bound = depth_bound;
  tree_params.session = splitmix64(nonce_state);
  const TreeResult tree = run_tree_formation(net, adversary, tree_params);
  result.flooding_rounds += 2;  // announcement + tree

  ValueTable values(n, 1, 0);
  const ValueTable weights(n, 1, 0);
  for (std::uint32_t id = 0; id < n; ++id) values.data[id] = readings[id];

  AggConfig agg_config;
  agg_config.instances = 1;
  agg_config.nonce = splitmix64(nonce_state);
  AuditLog audits(n);
  const AggregationOutcome agg =
      run_aggregation(net, adversary, tree, agg_config, values, weights,
                      audits);
  result.flooding_rounds += 2;

  Reading minimum = kInfinity;
  for (const BsArrival& a : agg.arrivals) {
    const bool ok =
        a.msg.origin != kBaseStation && a.msg.origin.value < n &&
        a.msg.weight == 0 &&
        verify_agg_message(net.keys().sensor_mac_context(a.msg.origin), a.msg,
                           agg_config.nonce);
    if (!ok) {
      result.alarmed = true;  // spurious minimum: all it can do is alarm
      return result;
    }
    minimum = std::min(minimum, a.msg.value);
  }

  const std::uint64_t conf_nonce = splitmix64(nonce_state);
  const ConfirmationOutcome conf = run_confirmation(
      net, adversary, tree, {minimum}, conf_nonce, values, audits);
  result.flooding_rounds += 2;

  if (!conf.arrivals.empty()) {
    result.alarmed = true;  // any veto (even spurious): alarm, no result
    return result;
  }
  result.minimum = minimum;
  return result;
}

AlarmOnlyCampaign run_alarm_only_campaign(Network& net, Adversary* adversary,
                                          const std::vector<Reading>& readings,
                                          Level depth_bound,
                                          std::uint64_t seed,
                                          int max_attempts) {
  AlarmOnlyCampaign campaign;
  std::uint64_t state = seed;
  for (int i = 0; i < max_attempts; ++i) {
    ++campaign.executions;
    const AlarmOnlyResult r = run_alarm_only(net, adversary, readings,
                                             depth_bound, splitmix64(state));
    if (!r.alarmed) {
      campaign.minimum = r.minimum;
      return campaign;
    }
  }
  campaign.stalled = true;
  return campaign;
}

}  // namespace vmat
