#include "baseline/sampling.h"

#include <cmath>

#include "util/random.h"

namespace vmat {

SamplingResult run_set_sampling_count(
    const std::vector<std::uint8_t>& predicate, const SamplingConfig& config) {
  const std::size_t n = predicate.size();
  SamplingResult result;
  result.levels = n <= 2 ? 1
                         : static_cast<std::uint32_t>(
                               std::ceil(std::log2(static_cast<double>(n))));
  // Each level is a sequential phase of keyed predicate tests (each test
  // costs two flooding rounds; tests within a level are batched but levels
  // are inherently sequential): Ω(log n) flooding rounds total.
  result.flooding_rounds = static_cast<int>(result.levels) * 2;

  Rng rng(config.seed);
  // Observed hit fraction per level: test j at level l samples each sensor
  // independently with probability 2^-l (membership derived from a keyed
  // hash in the real protocol; an Rng stream here).
  std::vector<double> hit_fraction(result.levels, 0.0);
  for (std::uint32_t level = 0; level < result.levels; ++level) {
    const double p = std::pow(0.5, static_cast<double>(level + 1));
    std::uint32_t hits = 0;
    for (std::uint32_t t = 0; t < config.tests_per_level; ++t) {
      bool any = false;
      for (std::size_t id = 1; id < n && !any; ++id)
        any = predicate[id] != 0 && rng.bernoulli(p);
      if (any) ++hits;
    }
    hit_fraction[level] =
        static_cast<double>(hits) / static_cast<double>(config.tests_per_level);
  }

  // Maximum-likelihood count over a log-spaced candidate grid:
  // P(hit at level l | count c) = 1 - (1 - 2^-(l+1))^c.
  double best_ll = -1e300;
  double best_c = 0.0;
  for (double c = 1.0; c <= static_cast<double>(n) * 1.5; c *= 1.05) {
    double ll = 0.0;
    for (std::uint32_t level = 0; level < result.levels; ++level) {
      const double p = std::pow(0.5, static_cast<double>(level + 1));
      double hit_p = 1.0 - std::pow(1.0 - p, c);
      hit_p = std::min(std::max(hit_p, 1e-9), 1.0 - 1e-9);
      const double f = hit_fraction[level];
      ll += f * std::log(hit_p) + (1.0 - f) * std::log(1.0 - hit_p);
    }
    if (ll > best_ll) {
      best_ll = ll;
      best_c = c;
    }
  }
  // Zero-count special case: no level ever hit.
  bool any_hit = false;
  for (double f : hit_fraction) any_hit = any_hit || f > 0.0;
  result.estimate = any_hit ? best_c : 0.0;
  return result;
}

}  // namespace vmat
