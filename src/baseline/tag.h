// TAG-style insecure in-network aggregation (Madden et al. [15]) — the
// classic baseline VMAT's introduction motivates against. Hop-count tree,
// no MACs, no confirmation: a single malicious sensor on a cut of the tree
// can silently corrupt the final answer, and nobody can tell.
#pragma once

#include <optional>
#include <unordered_set>

#include "sim/network.h"

namespace vmat {

enum class TagAttack : std::uint8_t {
  kNone,
  kDrop,     ///< malicious nodes forward nothing
  kInflate,  ///< malicious nodes replace the min with a huge value
  kDeflate,  ///< malicious nodes inject an absurdly small value
};

struct TagResult {
  std::optional<Reading> minimum;  ///< what the base station believes
  int flooding_rounds{2};          ///< tree + aggregation
};

/// Run one TAG MIN query. `malicious` nodes apply `attack`.
[[nodiscard]] TagResult run_tag_min(Network& net,
                                    const std::vector<Reading>& readings,
                                    const std::unordered_set<NodeId>& malicious,
                                    TagAttack attack, Level depth_bound);

}  // namespace vmat
