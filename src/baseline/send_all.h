// "No aggregation" comparator from Section IX: every sensor sends its
// MAC'd reading to the base station over multi-hop routes. Exact and
// trivially verifiable, but the per-node relaying cost near the base
// station grows linearly in n — the 80 KB vs 2.4 KB comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/network.h"

namespace vmat {

struct SendAllResult {
  Reading minimum{kInfinity};
  std::uint64_t total_bytes{0};      ///< sum over all transmissions
  std::uint64_t max_node_bytes{0};   ///< hottest relay (next to the BS)
  int flooding_rounds{0};
};

/// Convergecast every reading (id + value + 8-byte MAC per record) along
/// the BFS tree and account per-hop transmission bytes analytically.
[[nodiscard]] SendAllResult run_send_all(const Network& net,
                                         const std::vector<Reading>& readings);

}  // namespace vmat
