// Set-sampling comparator (Yu, IPSN'09 [29]).
//
// The sampling approach *tolerates* malicious sensors — it always produces
// a correct (ε,δ)-style estimate and needs no pinpointing — but pays
// Ω(log n) sequential flooding rounds per query, against VMAT's O(1)
// (Section I). We implement a faithful functional model: geometric
// set-sampling with choke-proof keyed predicate tests, where level ℓ
// samples each sensor with probability 2^-ℓ and the count is estimated by
// maximum likelihood over the observed hit fractions. Malicious sensors may
// flip their own predicate bit (equivalent to lying about their own
// reading, which no secure aggregation scheme prevents) but cannot
// otherwise disturb the estimate — that is the tolerance property.
#pragma once

#include <cstdint>
#include <vector>

namespace vmat {

struct SamplingConfig {
  std::uint32_t tests_per_level{32};  ///< parallel keyed tests per level
  std::uint64_t seed{1};
};

struct SamplingResult {
  double estimate{0.0};
  int flooding_rounds{0};  ///< 2 per sequential level: Ω(log n)
  std::uint32_t levels{0};
};

/// Estimate the predicate count over `predicate` (one bool per sensor;
/// index 0, the base station, is ignored).
[[nodiscard]] SamplingResult run_set_sampling_count(
    const std::vector<std::uint8_t>& predicate, const SamplingConfig& config);

}  // namespace vmat
