// Set sampling (Yu, IPSN'09 [29]) — the protocol-level implementation.
//
// Pre-deployment, a matrix of *set keys* K_{j,ℓ} is generated; sensor x is
// a member of set S_{j,ℓ} iff PRF(K_pool-derivation, x, j, ℓ) < 2^-ℓ, and
// members are pre-loaded with that set's key. A COUNT query runs ℓ =
// 1..⌈log₂ n⌉ sequential *levels*; at level ℓ the base station issues T
// keyed predicate tests — "is there a sensor holding K_{j,ℓ} (i.e. in
// S_{j,ℓ}) whose reading satisfies the query predicate?" — each resolved
// with the same choke-proof verified-reply flood VMAT's pinpointing uses
// (one legitimate byte string, verifiable by every forwarder against a
// broadcast hash token). The count is then the maximum-likelihood fit to
// the per-level positive-test fractions.
//
// Tolerance, mechanically: a Byzantine *member* of a set can fake a "yes"
// (it holds the key — but that is indistinguishable from reporting its own
// reading as satisfying, which no secure aggregation scheme prevents) or
// stay silent (it cannot suppress an honest member's reply, which floods
// around it). Byzantine non-members cannot forge replies at all. Hence no
// pinpointing is ever needed — at the price of Ω(log n) sequential
// flooding rounds per query, VMAT's motivating comparison (Section I).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "attack/adversary.h"
#include "sim/network.h"

namespace vmat {

struct SetSamplingProtocolConfig {
  std::uint32_t tests_per_level{32};
  std::uint64_t key_seed{17};  ///< derives the set-key matrix
};

struct SetSamplingRun {
  double estimate{0.0};
  int flooding_rounds{0};
  std::uint32_t levels{0};
  std::uint32_t positive_tests{0};
};

class SetSamplingProtocol {
 public:
  SetSamplingProtocol(Network* net, Adversary* adversary,
                      const SetSamplingProtocolConfig& config);

  /// True iff sensor x belongs to sampling set (test j, level ℓ).
  [[nodiscard]] bool is_member(NodeId sensor, std::uint32_t test,
                               std::uint32_t level) const;

  /// Run a full COUNT query over `predicate` (one flag per sensor; index 0
  /// ignored). Byzantine members answer via the adversary's
  /// answer_predicate hook (the Predicate carries the (test, level) pair
  /// in its id window fields for the strategy to inspect).
  [[nodiscard]] SetSamplingRun count(const std::vector<std::uint8_t>& predicate);

 private:
  /// One keyed test: does any member of (test, level) satisfy the
  /// predicate and reach the base station through the honest subgraph?
  [[nodiscard]] bool run_test(const std::vector<std::uint8_t>& predicate,
                              std::uint32_t test, std::uint32_t level);

  Network* net_;
  Adversary* adversary_;
  SetSamplingProtocolConfig config_;
  SymmetricKey membership_key_;
};

}  // namespace vmat
