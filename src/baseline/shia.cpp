#include "baseline/shia.h"

#include <algorithm>

#include "util/bytes.h"
#include "util/random.h"

namespace vmat {

ShiaLabel shia_fold(std::uint64_t nonce, NodeId self, std::int64_t reading,
                    const std::vector<ShiaChildInput>& children) {
  ShiaLabel label;
  label.count = 1;
  label.value = reading;
  for (const auto& c : children) {
    label.count += c.label.count;
    label.value += c.label.value;
  }
  ByteWriter w;
  w.str("shia.vertex");
  w.u64(nonce);
  w.u32(self.value);
  w.u64(label.count);
  w.i64(label.value);
  w.i64(reading);
  for (const auto& c : children) {
    w.u32(c.child.value);
    w.u64(c.label.count);
    w.i64(c.label.value);
    w.raw(c.label.hash);
  }
  label.hash = Sha256::hash(w.bytes());
  return label;
}

namespace {

/// What a vertex owner ships down for result checking: exactly the inputs
/// it folded. Honest sensors ship the truth; a tamperer can only ship what
/// is consistent with its own committed vertex (anything else mismatches
/// even earlier), which is precisely what lets victims detect it.
struct FoldRecord {
  std::int64_t reading{0};
  std::vector<ShiaChildInput> children;  // id-ordered
  ShiaLabel out;
};

}  // namespace

ShiaResult run_shia_sum(const Network& net,
                        const std::vector<std::int64_t>& readings,
                        const std::unordered_set<NodeId>& malicious,
                        ShiaAttack attack, std::uint64_t nonce) {
  const std::uint32_t n = net.node_count();
  const auto depth = net.topology().bfs_depth();

  // BFS aggregation tree: parent = the first neighbor one level up.
  std::vector<NodeId> parent(n, kBaseStation);
  std::vector<std::vector<NodeId>> children(n);
  for (std::uint32_t id = 1; id < n; ++id) {
    if (depth[id] == kNoLevel) continue;
    for (NodeId v : net.topology().neighbors(NodeId{id})) {
      if (depth[v.value] == depth[id] - 1) {
        parent[id] = v;
        children[v.value].push_back(NodeId{id});
        break;
      }
    }
  }

  // Post-order fold (deepest first). `truth[id]` is the label id's subtree
  // *should* contribute (what id itself committed); `fold[id]` records the
  // inputs id actually folded and shipped.
  std::vector<std::uint32_t> order(n);
  for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return depth[a] > depth[b];
  });

  std::vector<FoldRecord> fold(n);
  for (std::uint32_t id : order) {
    if (depth[id] == kNoLevel) continue;
    const NodeId self{id};
    FoldRecord& record = fold[id];
    record.reading = id == kBaseStation.value ? 0 : readings[id];

    // Children submitted their committed labels (in id order by
    // construction of the children lists).
    std::vector<ShiaChildInput> inputs;
    for (NodeId c : children[id]) inputs.push_back({c, fold[c.value].out});

    if (malicious.contains(self)) {
      switch (attack) {
        case ShiaAttack::kNone:
          break;
        case ShiaAttack::kDropChildren:
          inputs.clear();  // fold as if it had no children
          break;
        case ShiaAttack::kTamperValue:
          for (auto& input : inputs) {
            input.label.value = 0;  // rewrite the branch's contribution
          }
          break;
        case ShiaAttack::kInflateOwn:
          record.reading += 1000;  // legal self-misreporting
          break;
      }
    }
    record.children = std::move(inputs);
    record.out = shia_fold(nonce, self, record.reading, record.children);
  }

  ShiaResult result;
  result.root = fold[kBaseStation.value].out;
  // aggregation-commit + root dissemination + path dissemination + acks
  result.flooding_rounds = 4;

  // Result checking with real recomputation: sensor s substitutes its true
  // label for its branch at every ancestor and hashes up to the root.
  auto verifies = [&](NodeId s) {
    ShiaLabel current = fold[s.value].out;
    NodeId node = s;
    // Bounded by the tree depth; kNoLevel sensors never reach here.
    while (node != kBaseStation) {
      const NodeId p = parent[node.value];
      std::vector<ShiaChildInput> inputs = fold[p.value].children;
      const auto it = std::find_if(
          inputs.begin(), inputs.end(),
          [&](const ShiaChildInput& c) { return c.child == node; });
      if (it != inputs.end()) {
        it->label = current;
      } else {
        // Dropped outright: reinsert in id order.
        inputs.insert(std::find_if(inputs.begin(), inputs.end(),
                                   [&](const ShiaChildInput& c) {
                                     return node < c.child;
                                   }),
                      {node, current});
      }
      current = shia_fold(nonce, p, fold[p.value].reading, inputs);
      node = p;
    }
    return current == result.root;
  };

  for (std::uint32_t id = 1; id < n; ++id) {
    if (depth[id] == kNoLevel) continue;
    if (malicious.contains(NodeId{id})) continue;
    if (!verifies(NodeId{id})) ++result.missing_acks;
  }
  if (result.missing_acks > 0) {
    result.alarmed = true;
  } else {
    result.sum = result.root.value;
  }
  return result;
}

ShiaCampaign run_shia_campaign(const Network& net,
                               const std::vector<std::int64_t>& readings,
                               const std::unordered_set<NodeId>& malicious,
                               ShiaAttack attack, std::uint64_t seed,
                               int max_attempts) {
  ShiaCampaign campaign;
  std::uint64_t state = seed;
  for (int i = 0; i < max_attempts; ++i) {
    ++campaign.executions;
    const auto r =
        run_shia_sum(net, readings, malicious, attack, splitmix64(state));
    if (!r.alarmed) {
      campaign.sum = r.sum;
      return campaign;
    }
  }
  campaign.stalled = true;
  return campaign;
}

}  // namespace vmat
