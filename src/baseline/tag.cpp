#include "baseline/tag.h"

#include <algorithm>

namespace vmat {

TagResult run_tag_min(Network& net, const std::vector<Reading>& readings,
                      const std::unordered_set<NodeId>& malicious,
                      TagAttack attack, Level depth_bound) {
  // TAG has no security machinery: model it directly over the BFS tree of
  // the physical topology (hop-count levels), with per-node min folding.
  const auto depth = net.topology().bfs_depth();
  const std::uint32_t n = net.node_count();

  // Process nodes deepest-first: each folds its own reading and its
  // children's submitted values, then submits to its BFS parent.
  std::vector<std::optional<Reading>> submitted(n);
  std::vector<std::uint32_t> order(n);
  for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return depth[a] > depth[b];
  });

  std::vector<std::optional<Reading>> folded(n);
  for (std::uint32_t id : order) {
    const NodeId node{id};
    if (depth[id] == kNoLevel) continue;
    Reading best = node == kBaseStation ? kInfinity : readings[id];
    if (folded[id].has_value()) best = std::min(best, *folded[id]);

    if (malicious.contains(node)) {
      switch (attack) {
        case TagAttack::kNone:
          break;
        case TagAttack::kDrop:
          continue;  // submit nothing
        case TagAttack::kInflate:
          best = kInfinity - 1;
          break;
        case TagAttack::kDeflate:
          best = -1000000;
          break;
      }
    }

    if (node == kBaseStation) {
      folded[id] = best == kInfinity ? folded[id] : std::optional(best);
      continue;
    }
    // Submit to the BFS parent (smallest-depth neighbor).
    NodeId parent = node;
    for (NodeId v : net.topology().neighbors(node)) {
      if (depth[v.value] != kNoLevel && depth[v.value] == depth[id] - 1) {
        parent = v;
        break;
      }
    }
    if (parent == node) continue;  // unreachable
    auto& slot = folded[parent.value];
    slot = slot.has_value() ? std::min(*slot, best) : best;
  }

  TagResult result;
  result.minimum = folded[kBaseStation.value];
  result.flooding_rounds = 2;
  (void)depth_bound;
  return result;
}

}  // namespace vmat
