# Re-point the repo-root compile_commands.json symlink at the build dir's
# database. Mirrors the configure-time logic in the top-level
# CMakeLists.txt: only a symlink is ever removed — a real file at the link
# path (not ours) is left untouched.
#
# Usage: cmake -DLINK=<link-path> -DDB=<database-path> -P refresh_db_link.cmake
if(NOT LINK OR NOT DB)
  message(FATAL_ERROR "refresh_db_link.cmake needs -DLINK= and -DDB=")
endif()
if(IS_SYMLINK "${LINK}")
  file(REMOVE "${LINK}")
endif()
if(NOT EXISTS "${LINK}")
  file(CREATE_LINK "${DB}" "${LINK}" SYMBOLIC)
else()
  message(STATUS "refresh_db_link: ${LINK} is a real file (not ours) — "
                 "left untouched")
endif()
