#!/usr/bin/env python3
"""check_trace: trace-invariant checker over exported flight-recorder JSON.

Mirrors src/trace/checker.cpp over the schema FlightRecorder::to_json
writes (trace_version 1 or 2), so CI — and anyone without a build tree —
can validate a recording produced by `vmatsim --trace FILE` or the
property suite's VMAT_TRACE_DIR export. Properties, per execution:

  lemma1-trail          With slotted SOF every confirmation-phase event
                        happens in an interval <= L (audit trails are
                        <= L+1 tuples, Lemma 1), and a pinpointing walk
                        takes <= L+2 steps (4L+6 unslotted).
  mac-before-accept     Every accept event is immediately preceded by a
                        successful mac-verify for the same origin.
  theorem7-disjunction  The execution produced a result XOR revoked at
                        least one key/sensor (Theorem 7).
  round-envelope        Clean executions stay within the O(1) data-path
                        budget (no predicate tests, <= 4 authenticated
                        broadcasts); revocation executions stay within the
                        O(L log n) pinpointing envelope.
  truncated-execution   The stream for an execution ends with an outcome.

Version-2 traces may interleave epoch slices ("unit": "epoch", written by
the serving engine's prepare_epoch), checked for one property instead:

  epoch-prep            An epoch slice carries announcement + tree
                        formation only: exactly one authenticated
                        broadcast, no query-phase events, no predicate
                        tests, no outcome.

Exit status: 0 all invariants hold, 1 violations found, 2 usage/IO error.
Output format: exec N: [property] message
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any


class Violation:
    __slots__ = ("execution", "prop", "detail")

    def __init__(self, execution: int, prop: str, detail: str):
        self.execution = execution
        self.prop = prop
        self.detail = detail

    def __str__(self) -> str:
        return f"exec {self.execution}: [{self.prop}] {self.detail}"


def ceil_log2(x: int) -> int:
    bits = 0
    while (1 << bits) < x:
        bits += 1
    return bits


def predicate_test_envelope(context: dict[str, Any]) -> int:
    """O(L log n) bound on predicate tests for one revocation execution.

    Must match vmat::predicate_test_envelope (src/trace/checker.cpp): one
    binary search over m candidates costs at most 2*ceil(log2 m) window
    tests plus the whole-window test and a re-confirmation; each walk step
    runs two searches (Figure 5 + Figure 6).
    """
    m = max(2, int(context["nodes"]) + int(context["ring_size"]))
    per_search = 2 * ceil_log2(m) + 3
    depth = max(int(context["depth_bound"]), 1)
    steps = depth + 2 if context["slotted_sof"] else 4 * depth + 6
    return steps * (2 * per_search + 1) + 8


def check_execution(
    index: int, execution: dict[str, Any], context: dict[str, Any]
) -> list[Violation]:
    events = execution.get("events", [])
    out: list[Violation] = []

    def flag(prop: str, detail: str) -> None:
        out.append(Violation(index, prop, detail))

    depth_bound = int(context["depth_bound"])
    saw_outcome = False
    produced_result = False
    revoked_anything = False
    pinpoint_steps = 0

    for i, e in enumerate(events):
        kind = e["k"]
        if kind == "accept":
            prev = events[i - 1] if i > 0 else None
            verified = (
                prev is not None
                and prev["k"] == "mac-verify"
                and prev["ok"]
                and prev["a"] == e["a"]
            )
            if not verified:
                flag(
                    "mac-before-accept",
                    f"arrival from node {e['a']} accepted without an "
                    "immediately preceding verified MAC",
                )
        elif kind == "pinpoint-step":
            pinpoint_steps += 1
        elif kind in ("key-revoked", "sensor-revoked"):
            revoked_anything = True
        elif kind == "outcome":
            saw_outcome = True
            produced_result = bool(e["ok"])
        if (
            context["slotted_sof"]
            and e["ph"] == "confirmation"
            and int(e["slot"]) > depth_bound
        ):
            flag(
                "lemma1-trail",
                f"confirmation event `{kind}` in interval {e['slot']} "
                f"> L={depth_bound}",
            )

    max_steps = depth_bound + 2 if context["slotted_sof"] else 4 * depth_bound + 6
    if pinpoint_steps > max_steps:
        flag(
            "lemma1-trail",
            f"pinpointing walk took {pinpoint_steps} steps > {max_steps}",
        )

    if not saw_outcome:
        flag("truncated-execution", "stream ends without an outcome event")
        return out  # the remaining properties need the outcome

    if produced_result == revoked_anything:
        flag(
            "theorem7-disjunction",
            "execution produced a result AND revoked key material"
            if produced_result
            else "execution produced no result and revoked nothing",
        )

    metrics = execution.get("metrics")
    if metrics is not None:
        totals = metrics["totals"]
        if produced_result:
            if totals["predicate_tests"] != 0:
                flag(
                    "round-envelope",
                    f"clean execution ran {totals['predicate_tests']} "
                    "predicate tests",
                )
            if totals["auth_broadcasts"] > 4:
                flag(
                    "round-envelope",
                    f"clean execution used {totals['auth_broadcasts']} "
                    "authenticated broadcasts > 4",
                )
        elif totals["predicate_tests"] > predicate_test_envelope(context):
            flag(
                "round-envelope",
                f"revocation execution ran {totals['predicate_tests']} "
                f"predicate tests > O(L log n) envelope "
                f"{predicate_test_envelope(context)}",
            )
    return out


def check_epoch(index: int, epoch: dict[str, Any]) -> list[Violation]:
    """Epoch-prep property: announcement + tree formation only."""
    events = epoch.get("events", [])
    out: list[Violation] = []

    def flag(detail: str) -> None:
        out.append(Violation(index, "epoch-prep", detail))

    query_kinds = ("predicate-test", "pinpoint-step", "accept", "reject", "veto")
    query_phases = ("aggregation", "confirmation", "pinpoint")
    auth_broadcasts = 0
    for e in events:
        kind = e["k"]
        if kind == "auth-bcast":
            auth_broadcasts += 1
        elif kind == "outcome":
            flag("epoch slice carries an outcome event")
        elif kind in query_kinds:
            flag(f"epoch slice carries query-phase event `{kind}`")
        if e["ph"] in query_phases:
            flag(f"epoch slice carries event in query phase `{e['ph']}`")
    if auth_broadcasts > 1:
        flag(f"epoch slice used {auth_broadcasts} authenticated broadcasts > 1")
    return out


def check_trace(trace: dict[str, Any]) -> list[Violation]:
    version = trace.get("trace_version")
    if version not in (1, 2):
        raise ValueError(f"unsupported trace_version: {version!r}")
    context = trace["context"]
    violations: list[Violation] = []
    for index, execution in enumerate(trace.get("executions", [])):
        if execution.get("unit") == "epoch":
            violations.extend(check_epoch(index, execution))
        else:
            violations.extend(check_execution(index, execution, context))
    return violations


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="check_trace", description=__doc__.splitlines()[0]
    )
    parser.add_argument("traces", nargs="+", help="trace JSON file(s)")
    args = parser.parse_args(argv)

    total_violations = 0
    total_executions = 0
    for path in args.traces:
        try:
            with open(path, encoding="utf-8") as f:
                trace = json.load(f)
            violations = check_trace(trace)
        except (OSError, ValueError, KeyError) as err:
            print(f"{path}: error: {err}", file=sys.stderr)
            return 2
        executions = len(trace.get("executions", []))
        total_executions += executions
        total_violations += len(violations)
        for v in violations:
            print(f"{path}: {v}")
    if total_violations:
        print(f"trace: {total_violations} violation(s)")
        return 1
    print(
        f"trace: all invariants hold "
        f"({total_executions} execution(s), {len(args.traces)} file(s))"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
