#!/usr/bin/env python3
"""serve-session: scripted client for the vmatd frame protocol.

Spawns `vmatsim --daemon` (or any command speaking src/serve/protocol.h on
stdin/stdout), submits a round-robin mix of COUNT / SUM / AVERAGE / MIN /
MAX / quantile queries across the tenants, polls until every result is in,
prints the STATS snapshot as JSON, and sends SHUTDOWN.

This is the language-independent conformance check for the wire protocol:
if the byte layout drifts from the documented encoding, this driver (not a
C++ client compiled against the same headers) is what catches it.

A query on a clean tenant must always be answered. A query on an
adversary-disrupted tenant may legitimately fail: with lying key holders
the revocation procedure broadens to whole ring-seed closures, and a
severe cascade can revoke enough of the population that MIN/MAX have no
readings left (kUnavailable) — Theorem 7 promises neutralization, not
zero casualties. The driver therefore tolerates failures on tenants whose
STATS snapshot says disrupted (reported in the JSON), unless --strict.

Exit status: 0 all clean-tenant queries answered, nothing lost, and the
daemon exited cleanly; 1 otherwise; 2 usage error.

Usage:
  tools/serve_session.py --queries 24 -- \\
      build/examples/vmatsim --daemon --tenants 4 --adversary-tenants 1
"""

from __future__ import annotations

import argparse
import json
import struct
import subprocess
import sys

OP_SUBMIT, OP_POLL, OP_STATS, OP_SHUTDOWN = 1, 2, 3, 4
KIND_NAMES = ["count", "sum", "average", "min", "max", "quantile"]

TENANT_STATS_FIELDS = (
    "tenant", "disrupted", "open", "submitted", "answered", "failed",
    "rounds", "executions", "disrupted_executions", "epochs_formed",
    "epochs_rearmed", "fabric_bytes")


def write_frame(pipe, payload: bytes) -> None:
    pipe.write(struct.pack("<I", len(payload)) + payload)
    pipe.flush()


def read_frame(pipe) -> bytes:
    header = pipe.read(4)
    if len(header) < 4:
        raise EOFError("daemon closed the stream")
    (length,) = struct.unpack("<I", header)
    payload = pipe.read(length)
    if len(payload) < length:
        raise EOFError("truncated frame from daemon")
    return payload


def encode_submit(tenant: int, kind: int, threshold: int, q: float,
                  domain_max: int) -> bytes:
    return struct.pack("<BIBIIqdq", OP_SUBMIT, tenant, kind, 0, 0,
                       threshold, q, domain_max)


class Reader:
    def __init__(self, payload: bytes):
        self.buf = payload
        self.pos = 0

    def take(self, fmt: str):
        size = struct.calcsize(fmt)
        if self.pos + size > len(self.buf):
            raise EOFError("truncated response payload")
        out = struct.unpack_from(fmt, self.buf, self.pos)
        self.pos += size
        return out[0] if len(out) == 1 else out


def decode_response(payload: bytes) -> dict:
    r = Reader(payload)
    op = r.take("<B")
    if r.take("<B") != 0:
        code = r.take("<B")
        msg = r.buf[r.pos + 4:].decode("utf-8", "replace")
        return {"op": op, "error": {"code": code, "message": msg}}
    out = {"op": op}
    if op == OP_SUBMIT:
        out["request_id"] = r.take("<Q")
    elif op in (OP_POLL, OP_SHUTDOWN):
        records = []
        for _ in range(r.take("<I")):
            rec = {"request_id": r.take("<Q"), "tenant": r.take("<I"),
                   "kind": KIND_NAMES[r.take("<B")]}
            rec["answered"] = r.take("<B") != 0
            if rec["answered"]:
                rec["estimate"] = r.take("<d")
            else:
                rec["error_code"] = r.take("<B")
            rec["executions"] = r.take("<I")
            rec["epoch_id"] = r.take("<Q")
            records.append(rec)
        out["results"] = records
    elif op == OP_STATS:
        out["ticks"] = r.take("<Q")
        out["results_ready"] = r.take("<Q")
        tenants = []
        for _ in range(r.take("<I")):
            values = r.take("<IBIQQQQQQQQQ")
            tenants.append(dict(zip(TENANT_STATS_FIELDS, values)))
        out["tenants"] = tenants
    return out


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="serve-session",
        description="Scripted vmatd session over stdin/stdout frames.")
    ap.add_argument("--queries", type=int, default=24,
                    help="queries to submit, round-robin kinds (default 24)")
    ap.add_argument("--tenants", type=int, default=4,
                    help="tenant count to spread queries over (must match "
                         "the daemon's --tenants; default 4)")
    ap.add_argument("--strict", action="store_true",
                    help="fail on ANY unanswered query, disrupted tenants "
                         "included")
    ap.add_argument("command", nargs=argparse.REMAINDER,
                    help="daemon command line (prefix with --)")
    args = ap.parse_args(argv)
    command = args.command
    if command and command[0] == "--":
        command = command[1:]
    if not command:
        ap.error("missing daemon command (after --)")
    if args.queries < 1 or args.tenants < 1:
        ap.error("--queries and --tenants must be positive")

    daemon = subprocess.Popen(command, stdin=subprocess.PIPE,
                              stdout=subprocess.PIPE)
    try:
        ids = set()
        for i in range(args.queries):
            payload = encode_submit(
                tenant=i % args.tenants, kind=i % 6,
                threshold=1200 + 25 * (i % 8),
                q=0.25 + 0.25 * (i % 3), domain_max=2048)
            write_frame(daemon.stdin, payload)
            resp = decode_response(read_frame(daemon.stdout))
            if "error" in resp:
                print(f"serve-session: SUBMIT {i} rejected: {resp['error']}",
                      file=sys.stderr)
                return 1
            ids.add(resp["request_id"])

        answered, failed = [], []
        while len(answered) + len(failed) < args.queries:
            write_frame(daemon.stdin, struct.pack("<BI", OP_POLL, 0))
            resp = decode_response(read_frame(daemon.stdout))
            if "error" in resp:
                print(f"serve-session: POLL rejected: {resp['error']}",
                      file=sys.stderr)
                return 1
            for rec in resp["results"]:
                ids.discard(rec["request_id"])
                (answered if rec["answered"] else failed).append(rec)

        write_frame(daemon.stdin, struct.pack("<B", OP_STATS))
        stats = decode_response(read_frame(daemon.stdout))
        write_frame(daemon.stdin, struct.pack("<B", OP_SHUTDOWN))
        final = decode_response(read_frame(daemon.stdout))
        daemon.stdin.close()
        rc = daemon.wait(timeout=60)

        disrupted = {t["tenant"] for t in stats.get("tenants", [])
                     if t.get("disrupted")}
        failed_clean = [r for r in failed if r["tenant"] not in disrupted]
        failed_disrupted = [r for r in failed if r["tenant"] in disrupted]
        report = {
            "queries": args.queries,
            "answered": len(answered),
            "failed_clean": len(failed_clean),
            "failed_disrupted": len(failed_disrupted),
            "unaccounted": len(ids),
            "leftover_at_shutdown": len(final.get("results", [])),
            "daemon_exit": rc,
            "stats": {k: v for k, v in stats.items() if k != "op"},
        }
        print(json.dumps(report, indent=2))
        for rec in failed:
            where = "disrupted" if rec["tenant"] in disrupted else "CLEAN"
            print(f"serve-session: query {rec['request_id']} failed on "
                  f"{where} tenant {rec['tenant']} "
                  f"(error code {rec['error_code']})", file=sys.stderr)
        ok = not failed_clean and not ids and rc == 0
        if args.strict:
            ok = ok and not failed_disrupted
        return 0 if ok else 1
    except EOFError as e:
        print(f"serve-session: {e}", file=sys.stderr)
        return 1
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
