#!/usr/bin/env python3
"""vmat-analyze: libclang semantic analyzer for the VMAT codebase.

vmat-lint (tools/vmat_lint.py) proves the invariants that are visible in
source *text*. This analyzer proves the ones that need types, scopes, and
call structure — it parses real translation units through libclang (driven
by the build's compile_commands.json) and walks the AST. Four rule
families, each named and individually suppressible:

  shard-race              Writes to non-shard-local state reachable from a
                          phase_shard.h worker callable (a lambda handed to
                          for_each_shard): assignments / compound assigns /
                          ++ / -- and non-const method calls whose target
                          resolves to a by-reference capture, a captured
                          `this`, or a global/static — unless the access
                          path is indexed (operator[] / at / a subscript),
                          which is the sanctioned per-node / per-shard
                          slot discipline, or the terminal call is on the
                          documented shard-safe API list (take_inbox,
                          receive_valid, ShardedTrace::shard).
  snapshot-field-coverage For every class with a serializer pair
                          (snapshot_save/snapshot_load, or the
                          coordinator's capture_snapshot/restore_snapshot),
                          every non-static data member must be referenced
                          by at least one of the pair's bodies. A member
                          added without updating the snapshot path smears
                          stale state into every fork; deliberate
                          exclusions (immutable identity, caches, scratch)
                          carry an allow() naming why.
  expected-discarded      An Expected<T>/Status/Error result discarded as
                          a bare expression statement or (void)-cast away,
                          and error-path returns that consult neither
                          `e.error()` nor `e` while manufacturing a fresh
                          value — the underlying error code is dropped.
  pool-escape             Stack locals captured by reference into a task
                          whose lifetime cannot be proven to outlast them:
                          a ref-capturing lambda that is returned, stored
                          into a member / global / static std::function or
                          container, or handed to std::thread / std::async.
                          (Direct arguments to the *synchronous* pool entry
                          points — ThreadPool::for_each,
                          parallel_for_trials, for_each_shard — join before
                          returning and are safe by construction.)

Suppression syntax (same grammar as vmat-lint, distinct prefix, so both
tools share one auditable trail; every allow should carry a justification):

  risky();  // vmat-analyze: allow(rule-name) -- justification
  // vmat-analyze: allow(rule-name) -- justification   (line above)
  // vmat-analyze: allow-file(rule-name)               (whole file)

Exit status:
  0  clean
  1  findings reported
  2  infrastructure error (bad arguments, unparseable TU, broken compdb)
  3  libclang / python-clang bindings unavailable (ctest maps this to
     SKIP via SKIP_RETURN_CODE — the gate degrades, it never fails)

Output: path:line:col: [rule-name] message   (plus --json for CI).
"""

from __future__ import annotations

import argparse
import glob as globmod
import json
import os
import re
import sys
from pathlib import Path

CXX_TU_SUFFIXES = {".cpp", ".cc", ".cxx"}

RULE_NAMES = [
    "expected-discarded",
    "pool-escape",
    "shard-race",
    "snapshot-field-coverage",
]

ALLOW_RE = re.compile(r"vmat-analyze:\s*allow\(([^)]*)\)")
ALLOW_FILE_RE = re.compile(r"vmat-analyze:\s*allow-file\(([^)]*)\)")

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_INFRA = 2
EXIT_UNAVAILABLE = 3


# --------------------------------------------------------------------------
# libclang loading. Auto-gated: a missing `clang` module or an unloadable
# libclang shared object yields (None, reason) and the caller exits 3.
# --------------------------------------------------------------------------

def _libclang_candidates(explicit: str | None) -> list[str]:
    candidates: list[str] = []
    if explicit:
        candidates.append(explicit)
    env = os.environ.get("VMAT_LIBCLANG")
    if env:
        candidates.append(env)
    patterns = [
        "/usr/lib/llvm-*/lib/libclang.so*",
        "/usr/lib/llvm-*/lib/libclang-*.so*",
        "/usr/lib/*/libclang.so*",
        "/usr/lib/*/libclang-*.so*",
        "/usr/local/lib/libclang*.so*",
        "/opt/homebrew/opt/llvm/lib/libclang.dylib",
        "/Library/Developer/CommandLineTools/usr/lib/libclang.dylib",
    ]
    for pat in patterns:
        candidates.extend(sorted(globmod.glob(pat), reverse=True))
    # libclang-cpp is the C++ monolith, not the C API the bindings need.
    return [c for c in candidates if "libclang-cpp" not in c]


def load_cindex(explicit: str | None):
    """Return (cindex_module, index, None) or (None, None, reason)."""
    try:
        from clang import cindex  # type: ignore[import-not-found]
    except ImportError as exc:
        return None, None, f"python clang bindings not importable: {exc}"
    try:
        return cindex, cindex.Index.create(), None
    except Exception:  # LibclangError: default soname not found
        pass
    for candidate in _libclang_candidates(explicit):
        try:
            cindex.Config.loaded = False
            cindex.Config.set_library_file(candidate)
            return cindex, cindex.Index.create(), None
        except Exception:
            continue
    return None, None, ("libclang shared library not loadable (tried the "
                        "default soname and the usual llvm install paths; "
                        "set VMAT_LIBCLANG or pass --libclang)")


# --------------------------------------------------------------------------
# Findings, suppressions, reporting.
# --------------------------------------------------------------------------

class Finding:
    __slots__ = ("path", "line", "column", "rule", "message")

    def __init__(self, path: str, line: int, column: int, rule: str,
                 message: str):
        self.path = path
        self.line = line
        self.column = column
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: [{self.rule}] " \
               f"{self.message}"


def _rule_list(spec: str) -> list[str]:
    return [r.strip() for r in spec.split(",") if r.strip()]


class Suppressions:
    """Per-file allow()/allow-file() lookup over raw source lines."""

    def __init__(self):
        self._cache: dict[str, tuple[set[str], dict[int, set[str]]]] = {}

    def _load(self, path: str):
        cached = self._cache.get(path)
        if cached is not None:
            return cached
        file_allows: set[str] = set()
        line_allows: dict[int, set[str]] = {}
        try:
            text = Path(path).read_text(encoding="utf-8", errors="replace")
        except OSError:
            text = ""
        for i, line in enumerate(text.split("\n"), start=1):
            for m in ALLOW_FILE_RE.finditer(line):
                file_allows.update(_rule_list(m.group(1)))
            for m in ALLOW_RE.finditer(line):
                line_allows.setdefault(i, set()).update(_rule_list(m.group(1)))
        self._cache[path] = (file_allows, line_allows)
        return self._cache[path]

    def allowed(self, path: str, rule: str, line: int) -> bool:
        file_allows, line_allows = self._load(path)
        if file_allows & {rule, "*"}:
            return True
        for candidate in (line, line - 1):
            if line_allows.get(candidate, set()) & {rule, "*"}:
                return True
        return False


class Reporter:
    """Deduplicates findings across TUs (a header is parsed once per
    includer), applies suppressions, and restricts findings to the
    requested roots."""

    def __init__(self, root: Path, scopes: list[Path], only: set[str] | None):
        self.root = root.resolve()
        self.scopes = [s.resolve() for s in scopes]
        self.only = only
        self.suppressions = Suppressions()
        self.findings: list[Finding] = []
        self.suppressed = 0
        self._seen: set[tuple[str, int, int, str, str]] = set()

    def in_scope(self, path: Path) -> bool:
        resolved = path.resolve()
        for scope in self.scopes:
            if resolved == scope:
                return True
            try:
                resolved.relative_to(scope)
                return True
            except ValueError:
                continue
        return False

    def rel(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root).as_posix()
        except ValueError:
            return path.resolve().as_posix()

    def report(self, location, rule: str, message: str) -> None:
        if self.only is not None and rule not in self.only:
            return
        if location is None or location.file is None:
            return
        path = Path(location.file.name)
        if not self.in_scope(path):
            return
        key = (self.rel(path), location.line, location.column, rule, message)
        if key in self._seen:
            return
        self._seen.add(key)
        if self.suppressions.allowed(str(path), rule, location.line):
            self.suppressed += 1
            return
        self.findings.append(Finding(key[0], location.line, location.column,
                                     rule, message))


# --------------------------------------------------------------------------
# AST helpers. Everything below runs only when libclang loaded, so cindex
# kinds are resolved lazily through the module handle.
# --------------------------------------------------------------------------

class Ast:
    """Thin facade over clang.cindex kinds + shared cursor utilities."""

    def __init__(self, cindex, root: Path):
        # cindex is None only under --self-check, which exercises the
        # kind-independent helpers (project_walk, in_project) with stubs.
        self.ci = cindex
        self.K = getattr(cindex, "CursorKind", None)
        self.root = root.resolve()
        self._root_str = str(self.root) + os.sep

    def in_project(self, cursor) -> bool:
        loc = cursor.location
        return (loc.file is not None
                and str(Path(loc.file.name).resolve())
                .startswith(self._root_str))

    def project_walk(self, tu_cursor):
        """Preorder walk skipping subtrees rooted outside the repo (system
        headers), which keeps the sweep fast and findings first-party.
        Yields every in-project cursor; the TU root itself is not yielded
        (it has no file and no rule matches it)."""
        stack = [tu_cursor]
        while stack:
            cur = stack.pop()
            if cur is not tu_cursor:
                yield cur
            for child in reversed(list(cur.get_children())):
                if child.location.file is None or self.in_project(child):
                    stack.append(child)

    def walk(self, cursor):
        for child in cursor.get_children():
            yield child
            yield from self.walk(child)

    @staticmethod
    def children(cursor):
        return list(cursor.get_children())

    @staticmethod
    def first_child(cursor):
        for child in cursor.get_children():
            return child
        return None

    def callee_name(self, call) -> str:
        ref = call.referenced
        if ref is not None and ref.spelling:
            return ref.spelling
        return call.spelling or ""

    def binary_op(self, cursor) -> str | None:
        """Operator token of a BINARY_OPERATOR (between its operands)."""
        ch = self.children(cursor)
        if len(ch) != 2:
            return None
        lhs_end = ch[0].extent.end.offset
        rhs_start = ch[1].extent.start.offset
        for tok in cursor.get_tokens():
            off = tok.location.offset
            if lhs_end <= off < rhs_start:
                return tok.spelling
        return None

    def unary_op(self, cursor) -> str | None:
        toks = list(cursor.get_tokens())
        if not toks:
            return None
        if toks[0].spelling in ("++", "--", "*", "&", "!", "-", "+", "~"):
            return toks[0].spelling
        return toks[-1].spelling

    def lambda_captures(self, lam):
        """Parse the capture list textually (cindex does not expose capture
        modes). Returns ({name: 'ref'|'val'}, default, captures_this)."""
        toks = [t.spelling for t in lam.get_tokens()]
        caps: dict[str, str] = {}
        default: str | None = None
        captures_this = False
        if not toks or toks[0] != "[":
            return caps, default, captures_this
        depth = 0
        entries: list[list[str]] = [[]]
        for tok in toks[1:]:
            if tok in ("[", "(", "{", "<"):
                depth += 1
            elif tok in (")", "}", ">"):
                depth = max(0, depth - 1)
            elif tok == "]":
                if depth == 0:
                    break
                depth -= 1
            if tok == "," and depth == 0:
                entries.append([])
            else:
                entries[-1].append(tok)
        for entry in entries:
            if not entry:
                continue
            if entry[0] == "&":
                if len(entry) == 1:
                    default = "ref"
                else:
                    caps[entry[1]] = "ref"
            elif entry[0] == "=":
                default = "val"
            elif entry[0] == "this" or entry[:2] == ["*", "this"]:
                captures_this = True
            else:
                caps[entry[0]] = "val"
        return caps, default, captures_this

    def declared_within(self, decl, extent) -> bool:
        loc = decl.location
        if loc.file is None or extent.start.file is None:
            return False
        return (loc.file.name == extent.start.file.name
                and extent.start.offset <= loc.offset <= extent.end.offset)

    def is_global_decl(self, decl) -> bool:
        if decl is None:
            return False
        try:
            storage = decl.storage_class
        except Exception:
            storage = None
        if storage == self.ci.StorageClass.STATIC:
            return True
        parent = decl.semantic_parent
        return parent is not None and parent.kind in (
            self.K.TRANSLATION_UNIT, self.K.NAMESPACE)

    def resolve_base(self, expr):
        """Walk an lvalue/base-expression chain down to its root.
        Returns (root_kind, decl, indexed, methods) where root_kind is one
        of 'decl' | 'this' | 'member-of-this' | 'unknown', `indexed` is
        True when the chain passes through a subscript (operator[], at, or
        a real array subscript), and `methods` lists traversed call names."""
        K = self.K
        indexed = False
        methods: list[str] = []
        cur = expr
        for _ in range(64):
            if cur is None:
                return "unknown", None, indexed, methods
            k = cur.kind
            if k in (K.UNEXPOSED_EXPR, K.PAREN_EXPR, K.CSTYLE_CAST_EXPR,
                     K.CXX_STATIC_CAST_EXPR, K.CXX_CONST_CAST_EXPR,
                     K.CXX_REINTERPRET_CAST_EXPR, K.CXX_FUNCTIONAL_CAST_EXPR):
                cur = self.first_child(cur)
            elif k == K.ARRAY_SUBSCRIPT_EXPR:
                indexed = True
                cur = self.first_child(cur)
            elif k == K.MEMBER_REF_EXPR:
                ch = self.children(cur)
                if not ch:
                    return "member-of-this", cur.referenced, indexed, methods
                cur = ch[0]
            elif k == K.CALL_EXPR:
                name = self.callee_name(cur)
                if name in ("operator[]", "at"):
                    indexed = True
                else:
                    methods.append(name)
                nxt = self.first_child(cur)
                if nxt is None:
                    return "unknown", None, indexed, methods
                cur = nxt
            elif k == K.DECL_REF_EXPR:
                return "decl", cur.referenced, indexed, methods
            elif k == K.CXX_THIS_EXPR:
                return "this", None, indexed, methods
            elif k == K.UNARY_OPERATOR:
                cur = self.first_child(cur)
            else:
                return "unknown", None, indexed, methods
        return "unknown", None, indexed, methods

    def ref_captured_locals(self, lam) -> list[str]:
        """Names of enclosing-scope locals this lambda captures by
        reference (explicitly, or any local DeclRef under a `[&]`)."""
        caps, default, _ = self.lambda_captures(lam)
        named = [n for n, mode in caps.items() if mode == "ref"]
        if named or default != "ref":
            return named
        # Default-&: collect referenced enclosing locals by name.
        out: set[str] = set()
        body = None
        for child in lam.get_children():
            if child.kind == self.K.COMPOUND_STMT:
                body = child
        if body is None:
            return []
        for node in self.walk(body):
            if node.kind != self.K.DECL_REF_EXPR:
                continue
            decl = node.referenced
            if decl is None or decl.kind not in (self.K.VAR_DECL,
                                                 self.K.PARM_DECL):
                continue
            if self.declared_within(decl, lam.extent):
                continue
            if self.is_global_decl(decl):
                continue
            out.add(decl.spelling)
        return sorted(out)


# --------------------------------------------------------------------------
# Rule: shard-race
# --------------------------------------------------------------------------

SHARD_ENTRY_POINTS = {"for_each_shard"}
# Methods documented safe for concurrent per-node use inside a shard (see
# DESIGN.md "Level-parallel phase drivers"): distinct-node inbox drains,
# batched receive, and the per-shard trace handle accessor.
SHARD_SAFE_METHODS = {"take_inbox", "receive_valid", "shard"}
ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
              "<<=", ">>="}
# Non-mutating / value-returning operators that show up as non-const
# method calls but are reads or produce copies on the access path.
NONMUTATING_OPERATORS = {"operator[]", "operator*", "operator->", "at",
                         "operator bool", "begin", "end", "data", "get"}


def rule_shard_race(ast: Ast, tu_cursor, reporter: Reporter) -> None:
    K = ast.K
    for cursor in ast.project_walk(tu_cursor):
        if cursor.kind != K.CALL_EXPR:
            continue
        if ast.callee_name(cursor) not in SHARD_ENTRY_POINTS:
            continue
        for arg in ast.children(cursor):
            lam = _find_lambda(ast, arg)
            if lam is not None:
                _check_shard_lambda(ast, lam, reporter)


def _find_lambda(ast: Ast, cursor):
    if cursor.kind == ast.K.LAMBDA_EXPR:
        return cursor
    for node in ast.walk(cursor):
        if node.kind == ast.K.LAMBDA_EXPR:
            return node
    return None


def _node_key(cursor):
    loc = cursor.extent.start
    return (str(cursor.kind), loc.file.name if loc.file else "",
            loc.offset, cursor.extent.end.offset)


def _check_shard_lambda(ast: Ast, lam, reporter: Reporter) -> None:
    K = ast.K
    caps, default, _captures_this = ast.lambda_captures(lam)
    extent = lam.extent
    body = None
    for child in lam.get_children():
        if child.kind == K.COMPOUND_STMT:
            body = child
    if body is None:
        return

    # Expression statements: non-const calls here (or void-returning ones
    # anywhere) are mutations-for-effect. Non-const calls whose result
    # feeds a larger expression are reference-returning accessors
    # (revocation(), fabric(), ...) — the outer expression is the one that
    # mutates, and it is judged on its own.
    stmt_keys: set = set()
    for node in [body, *ast.walk(body)]:
        if node.kind != K.COMPOUND_STMT:
            continue
        for stmt in node.get_children():
            expr = _unwrap(ast, stmt)
            if expr is not None:
                stmt_keys.add(_node_key(expr))

    def classify_write(target, what: str, via: str) -> None:
        root_kind, decl, indexed, _methods = ast.resolve_base(target)
        if indexed:
            return  # per-node / per-shard slot discipline
        if root_kind in ("this", "member-of-this"):
            reporter.report(target.location, "shard-race",
                            f"{what} via captured `this` inside a shard "
                            f"worker ({via}) — member state is shared "
                            "across shards; index into a per-shard or "
                            "per-node slot instead")
            return
        if root_kind != "decl" or decl is None:
            return
        if decl.kind not in (K.VAR_DECL, K.PARM_DECL):
            return
        name = decl.spelling
        if ast.is_global_decl(decl):
            try:
                if decl.type.is_const_qualified():
                    return
            except Exception:
                pass
            reporter.report(target.location, "shard-race",
                            f"{what} to global/static `{name}` from a "
                            f"shard worker ({via}) — every shard races on "
                            "it; make it per-shard state merged after the "
                            "join")
            return
        if ast.declared_within(decl, extent):
            return  # shard-local
        mode = caps.get(name, default)
        if mode == "ref":
            reporter.report(
                target.location, "shard-race",
                f"{what} to by-reference capture `{name}` inside a shard "
                f"worker ({via}) is not indexed by the shard's id range — "
                "shards race on the shared object; write into a per-shard "
                "slot and merge serially after the join")

    for node in ast.walk(body):
        kind = node.kind
        if kind == K.COMPOUND_ASSIGNMENT_OPERATOR:
            ch = ast.children(node)
            if ch:
                classify_write(ch[0], "write", "compound assignment")
        elif kind == K.BINARY_OPERATOR:
            if ast.binary_op(node) == "=":
                ch = ast.children(node)
                if ch:
                    classify_write(ch[0], "write", "assignment")
        elif kind == K.UNARY_OPERATOR:
            if ast.unary_op(node) in ("++", "--"):
                child = ast.first_child(node)
                if child is not None:
                    classify_write(child, "write", "increment/decrement")
        elif kind == K.CALL_EXPR:
            method = node.referenced
            if method is None or method.kind != K.CXX_METHOD:
                continue
            if method.is_const_method():
                continue
            name = method.spelling
            if name in SHARD_SAFE_METHODS or name in NONMUTATING_OPERATORS:
                continue
            try:
                returns_void = (method.result_type.get_canonical()
                                .spelling == "void")
            except Exception:
                returns_void = False
            if not returns_void and _node_key(node) not in stmt_keys:
                continue  # reference-returning accessor feeding a larger expr
            ch = ast.children(node)
            if not ch:
                continue
            # Operator-syntax calls (operator=, operator+=) lead with a ref
            # to the operator function; the written-to operand is next.
            base = ch[0]
            if name.startswith("operator") and len(ch) >= 2:
                base = ch[1]
            classify_write(base, f"non-const call `{name}()`",
                           "mutating method")


# --------------------------------------------------------------------------
# Rule: snapshot-field-coverage
# --------------------------------------------------------------------------

SNAPSHOT_PAIRS = [("snapshot_save", "snapshot_load"),
                  ("capture_snapshot", "restore_snapshot")]
_PAIR_NAMES = {n for pair in SNAPSHOT_PAIRS for n in pair}


def rule_snapshot_field_coverage(ast: Ast, tu_cursor,
                                 reporter: Reporter) -> None:
    K = ast.K
    classes: dict[str, dict] = {}
    defs: dict[tuple[str, str], object] = {}
    for cursor in ast.project_walk(tu_cursor):
        if cursor.kind in (K.CLASS_DECL, K.STRUCT_DECL) \
                and cursor.is_definition():
            usr = cursor.get_usr()
            if not usr or usr in classes:
                continue
            fields = {}
            methods = set()
            for child in cursor.get_children():
                if child.kind == K.FIELD_DECL:
                    fields[child.get_usr()] = child
                elif child.kind == K.CXX_METHOD:
                    methods.add(child.spelling)
            classes[usr] = {"cursor": cursor, "fields": fields,
                            "methods": methods, "name": cursor.spelling}
        elif cursor.kind == K.CXX_METHOD and cursor.is_definition() \
                and cursor.spelling in _PAIR_NAMES:
            parent = cursor.semantic_parent
            if parent is not None:
                defs[(parent.get_usr(), cursor.spelling)] = cursor

    for usr, info in classes.items():
        for save_name, load_name in SNAPSHOT_PAIRS:
            if save_name not in info["methods"] \
                    or load_name not in info["methods"]:
                continue
            save_def = defs.get((usr, save_name))
            load_def = defs.get((usr, load_name))
            if save_def is None or load_def is None:
                break  # bodies not visible in this TU; another TU has them
            touched: set[str] = set()
            for body in (save_def, load_def):
                for node in ast.walk(body):
                    if node.kind != K.MEMBER_REF_EXPR:
                        continue
                    ref = node.referenced
                    if ref is None or ref.kind != K.FIELD_DECL:
                        continue
                    parent = ref.semantic_parent
                    if parent is not None and parent.get_usr() == usr:
                        touched.add(ref.get_usr())
            for field_usr, field in sorted(info["fields"].items()):
                if field_usr in touched:
                    continue
                reporter.report(
                    field.location, "snapshot-field-coverage",
                    f"data member `{field.spelling}` of `{info['name']}` "
                    f"is never referenced by {save_name}()/{load_name}() — "
                    "a fork restores stale state for it; serialize it or "
                    "annotate the deliberate exclusion")
            break


# --------------------------------------------------------------------------
# Rule: expected-discarded
# --------------------------------------------------------------------------

EXPECTED_TYPE_RE = re.compile(r"\b(?:Expected<|Status\b|Error\b)")


def _is_expected_type(type_obj) -> bool:
    if type_obj is None:
        return False
    try:
        spellings = (type_obj.spelling, type_obj.get_canonical().spelling)
    except Exception:
        return False
    return any(EXPECTED_TYPE_RE.search(s or "") for s in spellings)


def _unwrap(ast: Ast, cursor):
    K = ast.K
    while cursor is not None and cursor.kind in (K.UNEXPOSED_EXPR,
                                                 K.PAREN_EXPR):
        cursor = ast.first_child(cursor)
    return cursor


def rule_expected_discarded(ast: Ast, tu_cursor, reporter: Reporter) -> None:
    K = ast.K
    for cursor in ast.project_walk(tu_cursor):
        kind = cursor.kind
        if kind == K.COMPOUND_STMT:
            for stmt in cursor.get_children():
                expr = _unwrap(ast, stmt)
                if expr is None or expr.kind != K.CALL_EXPR:
                    continue
                if _is_expected_type(expr.type):
                    reporter.report(
                        stmt.location, "expected-discarded",
                        f"result of `{ast.callee_name(expr)}()` "
                        f"({expr.type.spelling}) is discarded — handle the "
                        "value or propagate the error")
        elif kind in (K.CSTYLE_CAST_EXPR, K.CXX_STATIC_CAST_EXPR,
                      K.CXX_FUNCTIONAL_CAST_EXPR):
            try:
                is_void = cursor.type.kind == ast.ci.TypeKind.VOID
            except Exception:
                is_void = False
            if not is_void:
                continue
            inner = None
            for child in cursor.get_children():
                inner = child
            inner = _unwrap(ast, inner)
            if inner is not None and _is_expected_type(inner.type):
                reporter.report(
                    cursor.location, "expected-discarded",
                    f"an {inner.type.spelling} result is (void)-cast away "
                    "— the error code is silently dropped; handle it or "
                    "annotate why it cannot fail here")
        elif kind == K.IF_STMT:
            _check_dropped_error_return(ast, cursor, reporter)


def _check_dropped_error_return(ast: Ast, if_stmt, reporter: Reporter):
    K = ast.K
    ch = ast.children(if_stmt)
    if len(ch) < 2:
        return
    cond, then_branch = ch[0], ch[1]
    else_branch = ch[2] if len(ch) > 2 else None
    var = None
    for node in [cond, *ast.walk(cond)]:
        if node.kind == K.DECL_REF_EXPR:
            decl = node.referenced
            if decl is not None and decl.kind in (K.VAR_DECL, K.PARM_DECL) \
                    and _is_expected_type(decl.type):
                var = decl
                break
    if var is None:
        return
    bangs = sum(1 for t in cond.get_tokens() if t.spelling == "!")
    error_branch = then_branch if bangs % 2 == 1 else else_branch
    if error_branch is None:
        return
    var_key = (var.location.file.name if var.location.file else "",
               var.location.offset)
    consults = False
    has_value_return = False
    return_loc = None
    for node in [error_branch, *ast.walk(error_branch)]:
        if node.kind == K.DECL_REF_EXPR:
            decl = node.referenced
            if decl is not None and decl.location.file is not None and \
                    (decl.location.file.name, decl.location.offset) == var_key:
                consults = True
        elif node.kind == K.RETURN_STMT:
            if ast.first_child(node) is not None:
                has_value_return = True
                if return_loc is None:
                    return_loc = node.location
    if has_value_return and not consults:
        reporter.report(
            return_loc, "expected-discarded",
            f"error path returns a fresh value without consulting "
            f"`{var.spelling}.error()` — the underlying error code is "
            "dropped; propagate it or fold it into the new error")


# --------------------------------------------------------------------------
# Rule: pool-escape
# --------------------------------------------------------------------------

THREADY_NAMES = {"thread", "jthread", "async"}
STORE_CALLS = {"push_back", "emplace_back", "operator=", "assign"}


def rule_pool_escape(ast: Ast, tu_cursor, reporter: Reporter) -> None:
    K = ast.K
    for cursor in ast.project_walk(tu_cursor):
        kind = cursor.kind
        if kind == K.RETURN_STMT:
            lam = _find_lambda_arg(ast, cursor)
            if lam is not None:
                names = ast.ref_captured_locals(lam)
                if names:
                    reporter.report(
                        lam.location, "pool-escape",
                        "returned callable captures "
                        f"{_fmt_names(names)} by reference — the frame "
                        "that owns them is gone when the task runs; "
                        "capture by value or pass owned state")
        elif kind == K.CALL_EXPR:
            name = ast.callee_name(cursor)
            ref = cursor.referenced
            is_thready = name in THREADY_NAMES or (
                ref is not None and ref.kind == K.CONSTRUCTOR
                and ref.semantic_parent is not None
                and ref.semantic_parent.spelling in THREADY_NAMES)
            if is_thready:
                lam = _find_lambda_arg(ast, cursor)
                if lam is not None:
                    names = ast.ref_captured_locals(lam)
                    if names:
                        reporter.report(
                            lam.location, "pool-escape",
                            f"task handed to `{name}` captures "
                            f"{_fmt_names(names)} by reference — an async "
                            "task's lifetime is not bounded by this frame; "
                            "only the synchronous pool entry points "
                            "(for_each/parallel_for_trials/for_each_shard) "
                            "join before returning")
                continue
            if name in STORE_CALLS:
                _check_stored_task(ast, cursor, reporter)
        elif kind == K.VAR_DECL and ast.is_global_decl(cursor):
            lam = _find_lambda_arg(ast, cursor)
            if lam is not None:
                names = ast.ref_captured_locals(lam)
                if names:
                    reporter.report(
                        lam.location, "pool-escape",
                        f"global/static `{cursor.spelling}` stores a "
                        f"callable capturing {_fmt_names(names)} by "
                        "reference — it outlives every frame")


def _find_lambda_arg(ast: Ast, cursor):
    for node in ast.walk(cursor):
        if node.kind == ast.K.LAMBDA_EXPR:
            return node
    return None


def _fmt_names(names: list[str]) -> str:
    return ", ".join(f"`{n}`" for n in names)


def _check_stored_task(ast: Ast, call, reporter: Reporter) -> None:
    K = ast.K
    ch = ast.children(call)
    if len(ch) < 2:
        return
    # Dot-syntax calls lead with the member-ref callee (whose child is the
    # object); operator-syntax calls (CXXOperatorCallExpr) lead with a bare
    # ref to the operator function, then the operands — skip that ref so
    # the store target is the LHS, not the callee.
    target_idx = 0
    rk0, decl0, _i0, _m0 = ast.resolve_base(ch[0])
    if rk0 == "decl" and decl0 is not None and decl0.kind in (
            K.CXX_METHOD, K.FUNCTION_DECL, K.FUNCTION_TEMPLATE):
        target_idx = 1
    if len(ch) <= target_idx + 1:
        return
    lam = None
    for arg in ch[target_idx + 1:]:
        lam = _find_lambda_arg(ast, arg)
        if lam is not None:
            break
    if lam is None:
        return
    names = ast.ref_captured_locals(lam)
    if not names:
        return
    root_kind, decl, _indexed, _methods = ast.resolve_base(ch[target_idx])
    escapes = root_kind in ("this", "member-of-this") or (
        root_kind == "decl" and ast.is_global_decl(decl))
    if escapes:
        target = decl.spelling if decl is not None else "member state"
        reporter.report(
            lam.location, "pool-escape",
            f"task stored into `{target}` (member/global scope) captures "
            f"{_fmt_names(names)} by reference — the store outlives the "
            "frame that owns the captures; capture by value")


RULES = {
    "expected-discarded": rule_expected_discarded,
    "pool-escape": rule_pool_escape,
    "shard-race": rule_shard_race,
    "snapshot-field-coverage": rule_snapshot_field_coverage,
}


# --------------------------------------------------------------------------
# Compilation database / argument handling.
# --------------------------------------------------------------------------

_DROP_ARGS = {"-c", "-MMD", "-MD", "-MP", "-fcolor-diagnostics",
              "-fdiagnostics-color=always"}


def _is_source_operand(arg: str, directory: str, path: Path) -> bool:
    """True iff `arg` is the TU's own source-file operand. Compares
    resolved paths (relative args resolve against the command's working
    directory) so an unrelated argument that merely shares the basename
    — e.g. a -include operand from another directory — is kept."""
    if arg.startswith("-"):
        return False
    cand = Path(arg)
    if not cand.is_absolute():
        cand = Path(directory) / cand
    try:
        return cand.resolve() == path
    except OSError:
        return False


def args_for(cindex, compdb, path: Path, fallback: list[str]) -> list[str]:
    if compdb is not None:
        try:
            commands = compdb.getCompileCommands(str(path))
        except Exception:
            commands = None
        if commands:
            cmd = commands[0]
            raw = list(cmd.arguments)
            directory = str(cmd.directory)
            out: list[str] = []
            skip_next = False
            for arg in raw[1:]:  # raw[0] is the compiler
                if skip_next:
                    skip_next = False
                    continue
                if arg in ("-o", "-MF", "-MT", "-MQ", "--output"):
                    skip_next = True
                    continue
                if arg in _DROP_ARGS \
                        or _is_source_operand(arg, directory, path):
                    continue
                out.append(arg)
            return out
    return fallback


def collect_tus(root: Path, specs: list[str]) -> list[Path]:
    files: list[Path] = []
    seen: set[Path] = set()
    for spec in specs:
        p = Path(spec) if Path(spec).is_absolute() else root / spec
        if p.is_file():
            candidates = [p]
        elif p.is_dir():
            candidates = sorted(q for q in p.rglob("*")
                                if q.is_file()
                                and q.suffix in CXX_TU_SUFFIXES)
        else:
            raise FileNotFoundError(spec)
        for q in candidates:
            q = q.resolve()
            if q not in seen:
                seen.add(q)
                files.append(q)
    return files


# --------------------------------------------------------------------------
# Binding-free self-check. The AST rules only execute where libclang is
# importable, so a pure-Python regression in the shared walking / compdb
# helpers would otherwise be masked by SKIP on machines without bindings.
# --self-check exercises them against stub cursors and a stub compilation
# database; the ctest suite runs it unconditionally.
# --------------------------------------------------------------------------

def _self_check(root: Path) -> int:
    import inspect
    import types

    failures: list[str] = []

    def expect(cond: bool, msg: str) -> None:
        if not cond:
            failures.append(msg)

    def cursor(name: str, file: str | None, *children):
        loc = types.SimpleNamespace(
            file=None if file is None else types.SimpleNamespace(name=file))
        return types.SimpleNamespace(
            spelling=name, location=loc,
            get_children=lambda kids=tuple(children): list(kids))

    ast = Ast(None, root)
    expect(inspect.isgeneratorfunction(Ast.project_walk),
           "project_walk must be a generator (every rule iterates it)")
    inside = str(root / "a.cpp")
    tu = cursor(
        "tu", None,
        cursor("a", inside,
               cursor("a1", inside), cursor("a2", inside)),
        cursor("sys", "/usr/include/x.h",
               cursor("sys1", "/usr/include/x.h")),
        cursor("b", str(root / "sub" / "b.cpp")))
    walked = [c.spelling for c in ast.project_walk(tu)]
    expect(walked == ["a", "a1", "a2", "b"],
           f"project_walk preorder/pruning wrong: {walked}")

    # args_for drops exactly the TU's own source operand (absolute or
    # relative to the command's directory); a same-basename file elsewhere
    # (-include operand below) and ordinary flags survive.
    src = (root / "sub" / "foo.cpp").resolve()
    command = types.SimpleNamespace(
        filename=str(src), directory=str(root / "build"),
        arguments=["c++", "-c", "-Ipublic", "-include",
                   "/elsewhere/foo.cpp", "-o", "foo.o", "../sub/foo.cpp"])
    compdb = types.SimpleNamespace(getCompileCommands=lambda _p: [command])
    got = args_for(None, compdb, src, ["fallback"])
    expect(got == ["-Ipublic", "-include", "/elsewhere/foo.cpp"],
           f"args_for filtered wrong: {got}")

    for msg in failures:
        print(f"vmat-analyze: self-check: {msg}", file=sys.stderr)
    if failures:
        return EXIT_INFRA
    print("vmat-analyze: self-check OK")
    return EXIT_CLEAN


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------

def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="vmat-analyze",
        description="libclang semantic analyzer: shard races, snapshot "
                    "field coverage, error discipline, task escapes.")
    ap.add_argument("paths", nargs="*",
                    help="files or directories relative to --root "
                         "(default: src)")
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("-p", dest="build_dir", default=None,
                    help="build dir containing compile_commands.json "
                         "(default: <root>/build, else the repo-root "
                         "symlink; self-contained fixtures parse without)")
    ap.add_argument("--only", action="append", default=[],
                    help="run only this rule (repeatable, comma-splittable)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print rule names (sorted) and exit")
    ap.add_argument("--json", dest="json_path", default=None,
                    help="write a JSON report here ('-' for stdout)")
    ap.add_argument("--libclang", default=None,
                    help="explicit libclang shared-object path")
    ap.add_argument("--probe", action="store_true",
                    help="exit 0 if libclang is usable, 3 if not")
    ap.add_argument("--self-check", action="store_true",
                    help="run binding-free unit checks of the shared "
                         "helpers (no libclang needed) and exit")
    ap.add_argument("--skip-unavailable", action="store_true",
                    help="exit 0 instead of 3 when libclang is missing "
                         "(for build targets that must not fail on "
                         "machines without it; CI probes explicitly)")
    ap.add_argument("--std", default="c++20",
                    help="fallback -std= when a file is not in the "
                         "compilation database (default: c++20)")
    args = ap.parse_args(argv)

    if args.list_rules:
        for name in sorted(RULES):
            print(name)
        return EXIT_CLEAN

    if args.self_check:
        return _self_check(Path(args.root).resolve())

    only = set()
    for spec in args.only:
        only.update(_rule_list(spec))
    unknown = only - set(RULES)
    if unknown:
        print("vmat-analyze: unknown rule(s): "
              + ", ".join(sorted(unknown)), file=sys.stderr)
        return EXIT_INFRA

    cindex, index, reason = load_cindex(args.libclang)
    if cindex is None:
        print(f"vmat-analyze: unavailable — {reason}", file=sys.stderr)
        return EXIT_CLEAN if args.skip_unavailable else EXIT_UNAVAILABLE
    if args.probe:
        print("vmat-analyze: libclang OK")
        return EXIT_CLEAN

    root = Path(args.root)
    if not root.is_dir():
        print(f"vmat-analyze: --root is not a directory: {root}",
              file=sys.stderr)
        return EXIT_INFRA
    root = root.resolve()

    compdb = None
    compdb_dir = None
    for candidate in ([args.build_dir] if args.build_dir
                      else [root / "build", root]):
        if candidate is None:
            continue
        candidate = Path(candidate)
        if (candidate / "compile_commands.json").is_file():
            compdb_dir = candidate
            break
    if args.build_dir and compdb_dir is None:
        print(f"vmat-analyze: no compile_commands.json in {args.build_dir} "
              "(configure CMake first, or build the `compile_db` target)",
              file=sys.stderr)
        return EXIT_INFRA
    if compdb_dir is not None:
        try:
            compdb = cindex.CompilationDatabase.fromDirectory(str(compdb_dir))
        except Exception as exc:
            print(f"vmat-analyze: broken compilation database in "
                  f"{compdb_dir}: {exc}", file=sys.stderr)
            return EXIT_INFRA

    specs = args.paths or ["src"]
    try:
        tus = collect_tus(root, specs)
    except FileNotFoundError as exc:
        print(f"vmat-analyze: no such path: {exc}", file=sys.stderr)
        return EXIT_INFRA
    if not tus:
        print("vmat-analyze: no translation units under: "
              + " ".join(specs), file=sys.stderr)
        return EXIT_INFRA

    scopes = [(Path(s) if Path(s).is_absolute() else root / s)
              for s in specs]
    reporter = Reporter(root, scopes, only or None)
    ast = Ast(cindex, root)
    fallback = ["-x", "c++", f"-std={args.std}", "-I", str(root / "src")]

    parse_errors: list[str] = []
    rule_errors: list[str] = []
    for path in tus:
        tu_args = args_for(cindex, compdb, path, fallback)
        try:
            tu = index.parse(str(path), args=tu_args)
        except cindex.TranslationUnitLoadError as exc:
            parse_errors.append(f"{path}: {exc}")
            continue
        hard = [d for d in tu.diagnostics
                if d.severity >= cindex.Diagnostic.Error]
        if hard:
            first = hard[0]
            where = (f"{first.location.file.name}:{first.location.line}"
                     if first.location.file else str(path))
            parse_errors.append(f"{path}: {len(hard)} parse error(s), "
                                f"first: {where}: {first.spelling}")
            continue
        for name, rule in sorted(RULES.items()):
            if only and name not in only:
                continue
            # A rule that throws is an analyzer bug, not a finding: record
            # it and exit EXIT_INFRA so exit-code consumers never mistake a
            # crash for "findings reported" (mirrors parse-error handling).
            try:
                rule(ast, tu.cursor, reporter)
            except Exception as exc:
                rule_errors.append(f"{path}: rule {name} crashed: "
                                   f"{type(exc).__name__}: {exc}")

    reporter.findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))

    if args.json_path:
        counts: dict[str, int] = {}
        for f in reporter.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        report = {
            "schema": "vmat-analyze/1",
            "root": str(root),
            "paths": specs,
            "translation_units": len(tus),
            "parse_errors": parse_errors,
            "rule_errors": rule_errors,
            "suppressed": reporter.suppressed,
            "counts": counts,
            "findings": [{"file": f.path, "line": f.line,
                          "column": f.column, "rule": f.rule,
                          "message": f.message}
                         for f in reporter.findings],
        }
        blob = json.dumps(report, indent=2, sort_keys=True)
        if args.json_path == "-":
            print(blob)
        else:
            Path(args.json_path).write_text(blob + "\n", encoding="utf-8")

    for f in reporter.findings:
        print(f)

    if parse_errors:
        for err in parse_errors:
            print(f"vmat-analyze: {err}", file=sys.stderr)
        print(f"vmat-analyze: {len(parse_errors)} translation unit(s) "
              "failed to parse — findings would be unreliable",
              file=sys.stderr)
        return EXIT_INFRA
    if rule_errors:
        for err in rule_errors:
            print(f"vmat-analyze: {err}", file=sys.stderr)
        print(f"vmat-analyze: {len(rule_errors)} internal rule error(s) "
              "— findings would be incomplete", file=sys.stderr)
        return EXIT_INFRA
    if reporter.findings:
        print(f"vmat-analyze: {len(reporter.findings)} finding(s) "
              f"({reporter.suppressed} suppressed)", file=sys.stderr)
        return EXIT_FINDINGS
    return EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
