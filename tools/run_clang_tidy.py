#!/usr/bin/env python3
"""Minimal run-clang-tidy: drive clang-tidy over the repo's compilation
database, restricted to first-party sources, with a parallel worker pool.

Used by the `tidy` build target and the `vmat_tidy` ctest (label: lint).
Kept dependency-free so it runs on any python3 without LLVM's own
run-clang-tidy being installed.

Exit status: 0 clean, 1 diagnostics emitted, 2 usage/setup error.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import subprocess
import sys
from pathlib import Path


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(prog="run_clang_tidy")
    ap.add_argument("paths", nargs="*",
                    help="source roots relative to --root "
                         "(default: src bench tests)")
    ap.add_argument("--clang-tidy", default="clang-tidy",
                    help="clang-tidy executable")
    ap.add_argument("-p", dest="build_dir", required=True,
                    help="build directory containing compile_commands.json")
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("-j", dest="jobs", type=int,
                    default=os.cpu_count() or 1)
    args = ap.parse_args(argv)

    root = Path(args.root).resolve()
    db_path = Path(args.build_dir) / "compile_commands.json"
    if not db_path.is_file():
        print(f"run_clang_tidy: no compilation database at {db_path} "
              "(configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON)",
              file=sys.stderr)
        return 2

    roots = [(root / p).resolve() for p in (args.paths or
                                            ["src", "bench", "tests"])]
    entries = json.loads(db_path.read_text())
    files = sorted({
        str(Path(e["directory"], e["file"]).resolve())
        for e in entries
        if any(str(Path(e["directory"], e["file"]).resolve())
               .startswith(str(r) + os.sep) for r in roots)
    })
    if not files:
        print("run_clang_tidy: no first-party files in the database",
              file=sys.stderr)
        return 2

    failed = []

    def run_one(path: str) -> tuple[str, int, str]:
        proc = subprocess.run(
            [args.clang_tidy, "-p", args.build_dir, "--quiet", path],
            capture_output=True, text=True)
        return path, proc.returncode, proc.stdout + proc.stderr

    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as ex:
        for path, code, output in ex.map(run_one, files):
            # clang-tidy exits non-zero on errors; warnings-as-errors from
            # .clang-tidy promote every finding.
            diagnostics = [ln for ln in output.splitlines()
                           if ": warning:" in ln or ": error:" in ln]
            if code != 0 or diagnostics:
                failed.append(path)
                sys.stdout.write(output)

    if failed:
        print(f"run_clang_tidy: {len(failed)}/{len(files)} file(s) with "
              "diagnostics", file=sys.stderr)
        return 1
    print(f"run_clang_tidy: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
