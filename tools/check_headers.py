#!/usr/bin/env python3
"""check-headers: header-hygiene gate for the VMAT public API.

Every header under src/ must compile standalone — `#include "the/header.h"`
as the first line of an otherwise empty translation unit — so that the
umbrella include order in src/vmat.h is never what makes a header build.
This is the check that caught the duplicated baseline/set_sampling.h
include: a header that only compiles because a sibling was included first
is a latent breakage for every downstream user who includes it directly.

Each header is syntax-checked (`-fsyntax-only`) with the same language
standard the build uses. Headers compile in parallel (one job per core by
default).

Exit status: 0 all headers self-contained, 1 failures, 2 usage error.
Output format: one line per failing header, then the compiler diagnostics.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import subprocess
import sys
import tempfile
from pathlib import Path


def compile_header(compiler: str, std: str, include_dir: Path,
                   header: str, extra_flags: list[str]) -> tuple[str, str]:
    """Returns (header, diagnostics); diagnostics == "" on success."""
    with tempfile.NamedTemporaryFile(
            mode="w", suffix=".cpp", delete=False) as tu:
        tu.write(f'#include "{header}"\n')
        tu_path = tu.name
    try:
        cmd = [compiler, "-fsyntax-only", f"-std={std}", "-Wall", "-Wextra",
               "-I", str(include_dir), *extra_flags, tu_path]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode == 0:
            return header, ""
        diag = proc.stderr.strip() or proc.stdout.strip() or \
            f"compiler exited {proc.returncode}"
        return header, diag
    finally:
        os.unlink(tu_path)


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="check-headers",
        description="Compile every public header standalone.")
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--include-dir", default="src",
                    help="public include root, relative to --root "
                         "(default: src)")
    ap.add_argument("--compiler", default=os.environ.get("CXX", "c++"),
                    help="C++ compiler to invoke (default: $CXX or c++)")
    ap.add_argument("--std", default="c++20",
                    help="language standard (default: c++20)")
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 2,
                    help="parallel compile jobs (default: cores)")
    ap.add_argument("--flag", action="append", default=[],
                    help="extra compiler flag (repeatable)")
    ap.add_argument("headers", nargs="*",
                    help="headers to check, relative to the include dir "
                         "(default: every *.h under it)")
    args = ap.parse_args(argv)

    include_dir = Path(args.root) / args.include_dir
    if not include_dir.is_dir():
        print(f"check-headers: no such include dir: {include_dir}",
              file=sys.stderr)
        return 2

    headers = args.headers or sorted(
        p.relative_to(include_dir).as_posix()
        for p in include_dir.rglob("*.h"))
    if not headers:
        print("check-headers: no headers found", file=sys.stderr)
        return 2

    failures: list[tuple[str, str]] = []
    with concurrent.futures.ThreadPoolExecutor(
            max_workers=max(1, args.jobs)) as pool:
        for header, diag in pool.map(
                lambda h: compile_header(args.compiler, args.std,
                                         include_dir, h, args.flag),
                headers):
            if diag:
                failures.append((header, diag))

    for header, diag in failures:
        print(f"check-headers: {header} is not self-contained:")
        for line in diag.splitlines():
            print(f"  {line}")
    status = "FAILED" if failures else "ok"
    print(f"check-headers: {len(headers)} header(s), "
          f"{len(failures)} failure(s) — {status}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
