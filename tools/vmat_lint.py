#!/usr/bin/env python3
"""vmat-lint: protocol-invariant linter for the VMAT codebase.

VMAT's security argument only holds if every implementation path preserves
a handful of mechanical invariants. This linter enforces the ones that are
checkable from source text, as named, individually suppressible rules:

  determinism-rng        All randomness flows through vmat::Rng seeded via
                         trial_seed(). Raw std::mt19937 / rand() / &c.
                         outside src/util/random.* silently breaks the
                         bit-identical-across-thread-counts contract.
  mac-verify-discarded   A MAC verification whose result is discarded is a
                         message accepted without a verified MAC. The
                         [[nodiscard]] attributes catch this at compile
                         time; this rule catches it in un-compiled paths
                         and fixture code.
  missing-nodiscard      Value-returning crypto/keys APIs must be
                         [[nodiscard]] so the compiler enforces the rule
                         above everywhere.
  key-memcpy             Raw memcpy on key material outside src/crypto/
                         and src/util/bytes.* bypasses the canonical
                         encoders and the constant-pattern helpers.
  threadpool-ref-capture Task lambdas handed to ThreadPool::for_each /
                         parallel_for_trials must name every capture
                         explicitly ([&] / [=] defaults are banned), so
                         shared mutable state is visible in review and the
                         per-trial-slot discipline is auditable.
  stdout-in-src          No direct std::cout / printf in src/ — output
                         goes through core/report or util/stats, which the
                         trial engine serialises. src/serve/ is sanctioned
                         (vmatd's operator status lines, printed only when
                         stdout is not the protocol channel).
  predicate-purity       Campaign trigger predicates are pure data: every
                         evaluate() definition in campaign code must be
                         const-qualified, must not consume randomness, and
                         must not mutate state. An impure predicate makes
                         fuzzer probes order-dependent, breaking corpus
                         replay and the De Morgan rewrite laws the search
                         relies on.
  hot-path-alloc         No Bytes / std::vector construction inside
                         per-frame loops in src/sim/ and src/core/ — the
                         arena fabric exists so the per-frame hot path
                         allocates nothing; stage into reusable scratch
                         (RxScratch, ShardBuf) or copy outside the loop.
  eager-ring-materialization
                         The large-n memory diet keeps one 8-byte ring
                         seed per node and re-derives key rings on demand
                         through Predistribution's small LRU. A container
                         of materialized KeyRing objects, or a ring()
                         sweep over every node, is the pre-diet shape: at
                         10^5..10^6 sensors it either resurrects the n·r
                         resident index sets or thrashes the LRU. Use
                         ring_seed()/ring_contains() (or the derive-based
                         paths) in whole-network loops.
  snapshot-unsafe-state  Classes captured by the copy-on-write snapshot
                         subsystem (any class with a snapshot_save()
                         member) must hold flat, order-independent state:
                         no std::unordered_map / std::unordered_set
                         members (iteration order leaks into the buffer
                         unless explicitly flattened) and no raw pointer
                         members with a mutable pointee (a snapshot cannot
                         own or relocate what they reference). Sanctioned
                         exceptions carry an allow() with the flatten /
                         rebuild story.

Suppression syntax (checked per rule name, or `*` for all):

  some_call();  // vmat-lint: allow(rule-name)       -- this line
  // vmat-lint: allow(rule-name)                     -- or the line above
  // vmat-lint: allow-file(rule-name)                -- whole file

Exit status: 0 clean, 1 violations found, 2 usage/internal error.
Output format: path:line: [rule-name] message
"""

from __future__ import annotations

import argparse
import bisect
import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".cpp", ".cc", ".cxx", ".h", ".hpp", ".inl"}

ALLOW_RE = re.compile(r"vmat-lint:\s*allow\(([^)]*)\)")
ALLOW_FILE_RE = re.compile(r"vmat-lint:\s*allow-file\(([^)]*)\)")


class Violation:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class SourceFile:
    """A parsed source file: raw lines, comment-and-string-stripped lines
    (for rule matching), and per-line / per-file suppression sets."""

    def __init__(self, path: Path, rel: str):
        self.path = path
        self.rel = rel  # repo-relative, forward slashes
        text = path.read_text(encoding="utf-8", errors="replace")
        self.raw_lines = text.split("\n")
        code, comments = _strip(text)
        self.code_lines = code.split("\n")
        self.comment_lines = comments.split("\n")
        self.file_allows: set[str] = set()
        self.line_allows: dict[int, set[str]] = {}
        for i, comment in enumerate(self.comment_lines, start=1):
            for m in ALLOW_FILE_RE.finditer(comment):
                self.file_allows.update(_rule_list(m.group(1)))
            for m in ALLOW_RE.finditer(comment):
                self.line_allows.setdefault(i, set()).update(
                    _rule_list(m.group(1)))

    def allowed(self, rule: str, line: int) -> bool:
        if self.file_allows & {rule, "*"}:
            return True
        for candidate in (line, line - 1):
            if self.line_allows.get(candidate, set()) & {rule, "*"}:
                return True
        return False

    def in_dir(self, *segments: str) -> bool:
        """True if any of `segments` appears as a path component of rel."""
        parts = self.rel.split("/")
        return any(s in parts for s in segments)

    def basename(self) -> str:
        return self.rel.rsplit("/", 1)[-1]


def _rule_list(spec: str) -> list[str]:
    return [r.strip() for r in spec.split(",") if r.strip()]


def _strip(text: str):
    """Split `text` into (code, comments): two equal-shape strings where
    comment bodies / string-literal bodies are blanked in `code`, and
    everything except comment text is blanked in `comments`. Newlines are
    preserved in both so line numbers survive."""
    code = []
    comments = []
    i, n = 0, len(text)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR, RAW = range(6)
    state = NORMAL
    raw_terminator = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                code.append("  ")
                comments.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                code.append("  ")
                comments.append("  ")
                i += 2
                continue
            if c == "R" and nxt == '"':
                m = re.match(r'R"([^(\s]*)\(', text[i:])
                if m:
                    state = RAW
                    raw_terminator = ")" + m.group(1) + '"'
                    code.append(" " * len(m.group(0)))
                    comments.append(" " * len(m.group(0)))
                    i += len(m.group(0))
                    continue
            if c == '"':
                state = STRING
                code.append(c)
                comments.append(" ")
                i += 1
                continue
            if c == "'":
                state = CHAR
                code.append(c)
                comments.append(" ")
                i += 1
                continue
            code.append(c)
            comments.append(c if c == "\n" else " ")
            i += 1
        elif state == LINE_COMMENT:
            if c == "\n":
                state = NORMAL
                code.append("\n")
                comments.append("\n")
            else:
                code.append(" ")
                comments.append(c)
            i += 1
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = NORMAL
                code.append("  ")
                comments.append("  ")
                i += 2
            else:
                code.append("\n" if c == "\n" else " ")
                comments.append(c)
                i += 1
        elif state in (STRING, CHAR):
            quote = '"' if state == STRING else "'"
            if c == "\\" and nxt:
                code.append("  ")
                comments.append("  ")
                i += 2
            elif c == quote:
                state = NORMAL
                code.append(c)
                comments.append(" ")
                i += 1
            elif c == "\n":  # unterminated; bail to NORMAL
                state = NORMAL
                code.append("\n")
                comments.append("\n")
                i += 1
            else:
                code.append(" ")
                comments.append(" ")
                i += 1
        elif state == RAW:
            if text.startswith(raw_terminator, i):
                state = NORMAL
                code.append(" " * len(raw_terminator))
                comments.append(" " * len(raw_terminator))
                i += len(raw_terminator)
            else:
                code.append("\n" if c == "\n" else " ")
                comments.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(code), "".join(comments)


def _balanced_span(text: str, open_pos: int) -> int:
    """Index just past the parenthesis group opening at text[open_pos]
    (which must be '('), or -1 if unbalanced."""
    depth = 0
    for j in range(open_pos, len(text)):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return j + 1
    return -1


# --------------------------------------------------------------------------
# Rules. Each rule is a function (SourceFile, report) -> None where report
# is called as report(line_number, message).
# --------------------------------------------------------------------------

RNG_RE = re.compile(
    r"\bstd::(mt19937(?:_64)?|minstd_rand0?|default_random_engine|"
    r"random_device|ranlux\w+|knuth_b)\b"
    r"|(?<!\w)(mt19937(?:_64)?|random_device)\b"
    r"|(?<!\w)(s?rand|drand48|lrand48|mrand48)\s*\(")


def rule_determinism_rng(src: SourceFile, report) -> None:
    if src.basename().startswith("random.") and src.in_dir("util"):
        return  # src/util/random.* is the one sanctioned implementation
    for i, line in enumerate(src.code_lines, start=1):
        if RNG_RE.search(line):
            report(i, "raw RNG engine/source outside src/util/random.*; "
                      "draw from vmat::Rng seeded via trial_seed() instead")


VERIFY_CALL_RE = re.compile(
    r"^\s*(?:[A-Za-z_]\w*(?:\.|->|::))*"
    r"(verify|verify_mac|verify_chain|compute|compute_mac|hmac_sha256|mac)"
    r"\s*\(")
STMT_END_RE = re.compile(r"[;{}]\s*$|^\s*$")
CONTROL_TAIL_RE = re.compile(r"^\s*(if|while|for|else|switch|case|do)\b")


def rule_mac_verify_discarded(src: SourceFile, report) -> None:
    lines = src.code_lines
    for i, line in enumerate(lines, start=1):
        m = VERIFY_CALL_RE.match(line)
        if not m:
            continue
        # MacBatch::compute() is a void mutator: its tags are consumed via
        # macs() after the call, so a bare `batch.compute();` statement is
        # the sanctioned usage, not a discarded check.
        if re.search(r"(?i)batch", line[:m.start(1)]):
            continue
        # Must be the start of a statement: previous non-blank code line
        # ends a statement/block, or opens a control body.
        prev = ""
        for j in range(i - 2, -1, -1):
            if lines[j].strip():
                prev = lines[j]
                break
        if prev and not (STMT_END_RE.search(prev)
                         or (prev.rstrip().endswith(")")
                             and CONTROL_TAIL_RE.match(prev))):
            continue
        # The whole statement must be just the call: find the call's
        # closing paren (possibly lines below) and require `;` after it.
        flat = "\n".join(lines[i - 1:min(i + 9, len(lines))])
        open_pos = flat.index("(", flat.index(m.group(1)))
        end = _balanced_span(flat, open_pos)
        if end < 0:
            continue
        tail = flat[end:].lstrip()
        if tail.startswith(";"):
            report(i, f"result of {m.group(1)}() is discarded — every "
                      "accepted message must have a *checked* MAC")


DECL_RE = re.compile(
    r"^((?:\[\[[\w:,\s]+\]\]\s*)*)"
    r"((?:(?:static|constexpr|explicit|inline|friend|virtual)\s+)*)"
    r"((?:const\s+)?[A-Za-z_][\w]*(?:::[\w]+)*(?:<[^;(){}]*>)?"
    r"(?:\s*[&*])*)\s+"
    r"([A-Za-z_]\w*)\s*\(")
DECL_SKIP_NAMES = {"if", "while", "for", "switch", "return", "sizeof",
                   "static_assert", "decltype", "alignas", "alignof",
                   "defined", "catch", "operator"}


def rule_missing_nodiscard(src: SourceFile, report) -> None:
    if not src.in_dir("crypto", "keys"):
        return
    if not src.basename().endswith((".h", ".hpp")):
        return
    lines = src.code_lines
    for i, line in enumerate(lines, start=1):
        m = DECL_RE.match(line.lstrip())
        if not m:
            continue
        attrs, mods, ret, name = (m.group(1) or ""), (m.group(2) or ""), \
            m.group(3).strip(), m.group(4)
        if name in DECL_SKIP_NAMES or "operator" in line:
            continue
        if "friend" in mods:
            continue
        if ret in ("void", "const void") or ret.rstrip("&* ") == "void":
            continue
        # Look back one line for an attribute that wrapped.
        back = lines[i - 2].strip() if i >= 2 else ""
        if "[[nodiscard]]" in attrs or "[[nodiscard]]" in line \
                or back.endswith("[[nodiscard]]"):
            continue
        indent = len(line) - len(line.lstrip())
        is_member = indent > 0
        # For members, only const-qualified (observer) functions are
        # required; mutators returning values (e.g. registration handles)
        # may legitimately be called for effect. Free functions and static
        # members in crypto/keys are pure by construction here.
        if is_member and "static" not in mods:
            flat = "\n".join(lines[i - 1:min(i + 9, len(lines))])
            open_pos = flat.index("(", flat.index(name))
            end = _balanced_span(flat, open_pos)
            if end < 0:
                continue
            tail = flat[end:]
            tail = tail.split(";", 1)[0].split("{", 1)[0]
            if not re.search(r"\bconst\b", tail):
                continue
        report(i, f"value-returning crypto/keys API `{name}` must be "
                  "[[nodiscard]] so discarded MAC checks fail the build")


MEMCPY_RE = re.compile(r"(?<!\w)(?:std::)?memcpy\s*\(")
KEY_ARG_RE = re.compile(r"(?i)\b\w*(key|secret|seed|ring|pad)\w*\b")


def rule_key_memcpy(src: SourceFile, report) -> None:
    if src.in_dir("crypto"):
        return
    if src.basename().startswith("bytes.") and src.in_dir("util"):
        return
    lines = src.code_lines
    for i, line in enumerate(lines, start=1):
        m = MEMCPY_RE.search(line)
        if not m:
            continue
        flat = "\n".join(lines[i - 1:min(i + 4, len(lines))])
        open_pos = flat.index("(", flat.index("memcpy"))
        end = _balanced_span(flat, open_pos)
        args = flat[open_pos:end if end > 0 else len(flat)]
        if KEY_ARG_RE.search(args):
            report(i, "raw memcpy on key material outside src/crypto/ and "
                      "src/util/bytes.*; use the canonical ByteWriter/"
                      "SymmetricKey copy paths")


POOL_CALL_RE = re.compile(
    r"(?:(?:\.|->)for_each|(?<!\w)parallel_for_trials)\s*\(")
DEFAULT_CAPTURE_RE = re.compile(r"^\s*([&=])\s*(?:,|\])")


def rule_threadpool_ref_capture(src: SourceFile, report) -> None:
    if src.basename().startswith("parallel.") and src.in_dir("util"):
        return  # the engine itself wraps the user lambda
    lines = src.code_lines
    for i, line in enumerate(lines, start=1):
        m = POOL_CALL_RE.search(line)
        if not m:
            continue
        flat = "\n".join(lines[i - 1:min(i + 9, len(lines))])
        pos = flat.find("[", m.end())
        if pos < 0:
            continue
        capture = flat[pos + 1:]
        if DEFAULT_CAPTURE_RE.match(capture):
            report(i, "default capture ([&] / [=]) in a ThreadPool task "
                      "lambda; name every captured object so shared "
                      "mutable state is auditable")


STDOUT_RE = re.compile(r"\bstd::cout\b|(?<!\w)printf\s*\(")


def rule_stdout_in_src(src: SourceFile, report) -> None:
    if not src.in_dir("src"):
        return
    base = src.basename()
    if src.in_dir("util") and base.startswith("stats."):
        return  # the sanctioned table/stats printer
    if src.in_dir("core") and base.startswith("report."):
        return  # the sanctioned report sink
    if src.in_dir("trace"):
        return  # the flight recorder's export sink (trace-file pointer line)
    if src.in_dir("serve"):
        # vmatd's operator status lines; Daemon::run() only prints when
        # stdout is NOT the protocol channel, so frames stay clean.
        return
    for i, line in enumerate(src.code_lines, start=1):
        if STDOUT_RE.search(line):
            report(i, "direct stdout in src/; route output through "
                      "core/report or util/stats so the trial engine can "
                      "serialise it")


# A *definition* of an evaluate() member/function: a return type before the
# name keeps calls (`when_.evaluate(...)`) from matching; `evaluate_node`
# and friends are excluded by requiring '(' right after the name.
PREDICATE_EVAL_DEF_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s*)?"
    r"(?:(?:static|constexpr|inline|virtual)\s+)*"
    r"(?:bool|auto)\s+(?:[A-Za-z_]\w*::)*evaluate\s*\(")
PREDICATE_RNG_RE = re.compile(
    r"\bRng\b|\brng\b|\brandom_device\b|(?<!\w)s?rand\s*\(|"
    r"\.(?:below|between|bernoulli|unit|fork)\s*\(")
PREDICATE_MUTATE_RE = re.compile(
    r"(?:\+\+|--)\s*\w+_\b|\b\w+_\s*(?:\+\+|--)|"
    r"\b\w+_\s*(?:[+\-*/|&^]|<<|>>)?=(?!=)|"
    r"\b\w+_\s*\.\s*(?:push_back|pop_back|insert|erase|clear|"
    r"emplace\w*|resize)\s*\(")


def rule_predicate_purity(src: SourceFile, report) -> None:
    if not src.in_dir("campaign"):
        return
    lines = src.code_lines
    text = "\n".join(lines)
    line_starts = [0]
    for ln in lines:
        line_starts.append(line_starts[-1] + len(ln) + 1)
    for i, line in enumerate(lines, start=1):
        m = PREDICATE_EVAL_DEF_RE.match(line)
        if not m:
            continue
        abs_pos = line_starts[i - 1] + line.index("evaluate")
        open_pos = text.index("(", abs_pos)
        params_end = _balanced_span(text, open_pos)
        if params_end < 0:
            continue
        brace = text.find("{", params_end)
        semi = text.find(";", params_end)
        if brace < 0 or 0 <= semi < brace:
            continue  # declaration, not a definition
        if not re.search(r"\bconst\b", text[params_end:brace]):
            report(i, "predicate evaluate() must be const-qualified: "
                      "trigger evaluation is a pure function of the "
                      "TriggerState")
        depth = 0
        end = -1
        for k in range(brace, len(text)):
            if text[k] == "{":
                depth += 1
            elif text[k] == "}":
                depth -= 1
                if depth == 0:
                    end = k
                    break
        if end < 0:
            continue
        first = bisect.bisect_right(line_starts, brace)
        last = bisect.bisect_right(line_starts, end)
        for body_no in range(first, last + 1):
            if body_no == i:
                continue  # the signature line itself
            body_line = lines[body_no - 1]
            if PREDICATE_RNG_RE.search(body_line):
                report(body_no,
                       "RNG use inside a predicate evaluate(); trigger "
                       "evaluation must not consume randomness — an impure "
                       "predicate breaks corpus replay")
            elif PREDICATE_MUTATE_RE.search(body_line):
                report(body_no,
                       "state mutation inside a predicate evaluate(); "
                       "trigger evaluation must be effect-free — fuzzer "
                       "probes must not be order-dependent")


FOR_RE = re.compile(r"\bfor\s*\(")
# A range-for whose range expression names delivered-frame containers: the
# per-frame hot path. Single colon only — `::` is scope resolution.
FRAME_RANGE_RE = re.compile(
    r"(?<!:):(?!:)[^;]*\b(frames?|inbox(?:es)?|receive_valid|take_inbox|"
    r"delivered_?|arrivals)\b")
HOT_ALLOC_RE = re.compile(
    r"\bBytes\s*[({]"            # temporary / direct-init
    r"|\bBytes\s+\w+\s*[;=({]"   # fresh declaration
    r"|\bstd::vector\s*<")


def rule_hot_path_alloc(src: SourceFile, report) -> None:
    if not src.in_dir("src") or not src.in_dir("sim", "core"):
        return
    text = "\n".join(src.code_lines)
    line_starts = [0]
    for ln in src.code_lines:
        line_starts.append(line_starts[-1] + len(ln) + 1)
    for m in FOR_RE.finditer(text):
        open_pos = text.index("(", m.start())
        hdr_end = _balanced_span(text, open_pos)
        if hdr_end < 0:
            continue
        if not FRAME_RANGE_RE.search(text[open_pos:hdr_end]):
            continue
        # Body: the brace block (or single statement) after the header.
        j = hdr_end
        while j < len(text) and text[j] in " \t\n":
            j += 1
        if j >= len(text):
            continue
        if text[j] == "{":
            depth = 0
            end = -1
            for k in range(j, len(text)):
                if text[k] == "{":
                    depth += 1
                elif text[k] == "}":
                    depth -= 1
                    if depth == 0:
                        end = k + 1
                        break
            if end < 0:
                continue
        else:
            end = text.find(";", j)
            end = len(text) if end < 0 else end + 1
        for am in HOT_ALLOC_RE.finditer(text, j, end):
            # Reference/pointer bindings to an existing vector don't
            # allocate; skip `std::vector<...>&` / `*` forms.
            if am.group(0).startswith("std::vector"):
                close = text.find(">", am.end(), end)
                probe = text[close + 1:close + 4] if close >= 0 else ""
                if "&" in probe or "*" in probe:
                    continue
            report(bisect.bisect_right(line_starts, am.start()),
                   "Bytes/std::vector construction inside a per-frame "
                   "loop; the hot path must not allocate — stage into "
                   "reusable scratch (RxScratch/ShardBuf) or hoist the "
                   "copy out of the loop")


CLASS_OPEN_RE = re.compile(r"\b(?:class|struct)\s+[A-Za-z_]\w*[^;{(]*\{")
SNAPSHOT_SAVE_RE = re.compile(r"\bsnapshot_save\s*\(")
# A member declaration of an unordered container, anchored at the start of
# the line so parameter lists inside method signatures don't match.
UNSAFE_CONTAINER_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:static\s+)?std::unordered_(map|set)\s*<")
# A raw pointer member (whole-line declaration, optional brace init). The
# captured type group is checked for `const`: a const pointee is a
# reference to immutable deployment identity, which snapshots fingerprint
# rather than capture.
PTR_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?"
    r"((?:[A-Za-z_][\w:]*\s+)*[A-Za-z_][\w:]*(?:<[^;()]*>)?)"
    r"\s*\*+\s*\w+\s*(?:\{[^;()]*\})?\s*;")


def rule_snapshot_unsafe_state(src: SourceFile, report) -> None:
    text = "\n".join(src.code_lines)
    line_starts = [0]
    for ln in src.code_lines:
        line_starts.append(line_starts[-1] + len(ln) + 1)
    for m in CLASS_OPEN_RE.finditer(text):
        open_brace = text.index("{", m.start())
        depth = 0
        end = -1
        for k in range(open_brace, len(text)):
            if text[k] == "{":
                depth += 1
            elif text[k] == "}":
                depth -= 1
                if depth == 0:
                    end = k
                    break
        if end < 0:
            continue
        body = text[open_brace + 1:end]
        if not SNAPSHOT_SAVE_RE.search(body):
            continue
        # Walk the body tracking brace depth relative to the class scope,
        # so locals in inline member functions and nested helper structs
        # (whose members are captured via their own encode) are skipped.
        depth = 0
        offset = open_brace + 1
        for raw in body.split("\n"):
            if depth == 0 and "(" not in raw:
                line_no = bisect.bisect_right(line_starts, offset)
                if UNSAFE_CONTAINER_MEMBER_RE.match(raw):
                    report(line_no,
                           "unordered container member in a snapshot-"
                           "captured class; hash iteration order is not "
                           "part of the state — flatten to a sorted/"
                           "insertion-ordered form in snapshot_save() and "
                           "carry an allow() documenting it, or use a flat "
                           "container")
                else:
                    pm = PTR_MEMBER_RE.match(raw)
                    if pm and "const" not in pm.group(1).split():
                        report(line_no,
                               "raw pointer member with a mutable pointee "
                               "in a snapshot-captured class; a snapshot "
                               "buffer cannot own or relocate the pointee "
                               "— capture the pointed-to state by value or "
                               "point at const deployment identity")
            depth += raw.count("{") - raw.count("}")
            offset += len(raw) + 1


RING_CONTAINER_RE = re.compile(
    r"\bstd::(?:vector|array|deque)\s*<\s*(?:vmat::)?KeyRing\b"
    r"|\bnew\s+(?:vmat::)?KeyRing\s*\[")
# `.ring(` / `->ring(` exactly — `ring_contains(` and `ring_seed(` are the
# sanctioned lazy alternatives and must not match.
RING_CALL_RE = re.compile(r"(?:\.|->)ring\s*\(")
NODE_SWEEP_RE = re.compile(r"\bnode_count\b|\bnode_ids\b|\ball_nodes\b")


def rule_eager_ring_materialization(src: SourceFile, report) -> None:
    if not src.in_dir("src"):
        return
    if src.in_dir("keys") and src.basename().startswith(
            ("predistribution.", "key_ring.")):
        return  # the lazy provisioning seam itself
    lines = src.code_lines
    text = "\n".join(lines)
    line_starts = [0]
    for ln in lines:
        line_starts.append(line_starts[-1] + len(ln) + 1)
    for i, line in enumerate(lines, start=1):
        if RING_CONTAINER_RE.search(line):
            report(i, "container of materialized KeyRing objects — the "
                      "pre-diet provisioning shape; keep the 8-byte ring "
                      "seeds and re-derive through Predistribution's LRU")
    for m in FOR_RE.finditer(text):
        open_pos = text.index("(", m.start())
        hdr_end = _balanced_span(text, open_pos)
        if hdr_end < 0:
            continue
        if not NODE_SWEEP_RE.search(text[open_pos:hdr_end]):
            continue
        # Body: the brace block (or single statement) after the header.
        j = hdr_end
        while j < len(text) and text[j] in " \t\n":
            j += 1
        if j >= len(text):
            continue
        if text[j] == "{":
            depth = 0
            end = -1
            for k in range(j, len(text)):
                if text[k] == "{":
                    depth += 1
                elif text[k] == "}":
                    depth -= 1
                    if depth == 0:
                        end = k + 1
                        break
            if end < 0:
                continue
        else:
            end = text.find(";", j)
            end = len(text) if end < 0 else end + 1
        for rm in RING_CALL_RE.finditer(text, j, end):
            report(bisect.bisect_right(line_starts, rm.start()),
                   "ring() materialized for every node in a whole-network "
                   "sweep; this thrashes the LRU and re-derives n rings — "
                   "use ring_seed()/ring_contains() or the derive-based "
                   "paths instead")


RULES = {
    "determinism-rng": rule_determinism_rng,
    "eager-ring-materialization": rule_eager_ring_materialization,
    "mac-verify-discarded": rule_mac_verify_discarded,
    "missing-nodiscard": rule_missing_nodiscard,
    "key-memcpy": rule_key_memcpy,
    "threadpool-ref-capture": rule_threadpool_ref_capture,
    "stdout-in-src": rule_stdout_in_src,
    "predicate-purity": rule_predicate_purity,
    "hot-path-alloc": rule_hot_path_alloc,
    "snapshot-unsafe-state": rule_snapshot_unsafe_state,
}


def lint_file(src: SourceFile, only: set[str] | None) -> list[Violation]:
    out: list[Violation] = []
    # Sorted so reporting order is (file, line, rule)-deterministic by
    # construction, independent of dict insertion order; main()'s final
    # sort then has nothing left to disambiguate.
    for rule_name, fn in sorted(RULES.items()):
        if only and rule_name not in only:
            continue

        def report(line: int, message: str, _rule=rule_name) -> None:
            if not src.allowed(_rule, line):
                out.append(Violation(src.rel, line, _rule, message))

        fn(src, report)
    return out


def collect(root: Path, paths: list[str]) -> list[SourceFile]:
    files: list[SourceFile] = []
    seen: set[Path] = set()
    for spec in paths:
        p = (root / spec) if not Path(spec).is_absolute() else Path(spec)
        if p.is_file():
            candidates = [p]
        elif p.is_dir():
            candidates = sorted(q for q in p.rglob("*")
                                if q.suffix in CXX_SUFFIXES and q.is_file())
        else:
            print(f"vmat-lint: no such path: {spec}", file=sys.stderr)
            sys.exit(2)
        for q in candidates:
            q = q.resolve()
            if q in seen:
                continue
            seen.add(q)
            try:
                rel = q.relative_to(root.resolve()).as_posix()
            except ValueError:
                rel = q.as_posix()
            files.append(SourceFile(q, rel))
    return files


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="vmat-lint",
        description="Protocol-invariant linter for the VMAT codebase.")
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories relative to --root "
                         "(default: src bench tests)")
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--rule", action="append", default=[],
                    help="run only this rule (repeatable)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print rule names and exit")
    args = ap.parse_args(argv)

    if args.list_rules:
        for name in sorted(RULES):
            print(name)
        return 0

    only = set(args.rule)
    unknown = only - set(RULES)
    if unknown:
        print(f"vmat-lint: unknown rule(s): {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2

    root = Path(args.root)
    if not root.is_dir():
        print(f"vmat-lint: --root is not a directory: {root}",
              file=sys.stderr)
        return 2
    paths = args.paths or ["src", "bench", "tests"]

    violations: list[Violation] = []
    for src in collect(root, paths):
        violations.extend(lint_file(src, only or None))

    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    for v in violations:
        print(v)
    if violations:
        print(f"vmat-lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
