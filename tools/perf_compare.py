#!/usr/bin/env python3
"""perf_compare: gate bench_scale timings against a committed baseline.

Usage: perf_compare.py NEW_JSON BASELINE_JSON [--threshold 1.25]

Compares every trial group present in both BENCH_scale-style reports:

  * ``exec_ms_min``  — wall-clock regression gate. Fails when
    new > baseline * threshold (default +25%). Faster is never a failure;
    a speedup beyond the inverse threshold prints a re-baseline hint.
  * ``fabric_kb``    — deterministic traffic; any drift beyond 0.1% is a
    correctness regression (a second byte-accounting path, a protocol
    change without a re-baseline) and fails regardless of timing.

Exit status: 0 clean, 1 regression, 2 usage/format error.
"""

from __future__ import annotations

import argparse
import json
import sys


def metrics_by_group(report: dict) -> dict[str, dict[str, float]]:
    out: dict[str, dict[str, float]] = {}
    for group in report.get("trial_groups", []):
        out[group["label"]] = {
            k: v for k, v in group.items() if isinstance(v, (int, float))
        }
    return out


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(prog="perf_compare", description=__doc__)
    ap.add_argument("new_json")
    ap.add_argument("baseline_json")
    ap.add_argument("--threshold", type=float, default=1.25,
                    help="allowed slowdown ratio (default 1.25 = +25%%)")
    args = ap.parse_args(argv)

    try:
        with open(args.new_json) as f:
            new = metrics_by_group(json.load(f))
        with open(args.baseline_json) as f:
            base = metrics_by_group(json.load(f))
    except (OSError, json.JSONDecodeError, KeyError) as e:
        print(f"perf_compare: {e}", file=sys.stderr)
        return 2

    shared = sorted(set(new) & set(base))
    if not shared:
        print("perf_compare: no common trial groups", file=sys.stderr)
        return 2

    failures = 0
    for label in shared:
        n, b = new[label], base[label]
        if "exec_ms_min" in n and "exec_ms_min" in b and b["exec_ms_min"] > 0:
            ratio = n["exec_ms_min"] / b["exec_ms_min"]
            verdict = "OK"
            if ratio > args.threshold:
                verdict = "REGRESSION"
                failures += 1
            elif ratio < 1.0 / args.threshold:
                verdict = "OK (faster — consider re-baselining)"
            print(f"{label}: exec_ms_min {b['exec_ms_min']:.2f} -> "
                  f"{n['exec_ms_min']:.2f} ({ratio:.2f}x)  {verdict}")
        if "fabric_kb" in n and "fabric_kb" in b and b["fabric_kb"] > 0:
            drift = abs(n["fabric_kb"] - b["fabric_kb"]) / b["fabric_kb"]
            if drift > 1e-3:
                print(f"{label}: fabric_kb {b['fabric_kb']:.1f} -> "
                      f"{n['fabric_kb']:.1f}  BYTE-ACCOUNTING DRIFT")
                failures += 1

    if failures:
        print(f"perf_compare: {failures} regression(s)", file=sys.stderr)
        return 1
    print(f"perf_compare: {len(shared)} group(s) within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
