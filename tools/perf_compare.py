#!/usr/bin/env python3
"""perf_compare: gate BENCH_*.json timings against a committed baseline.

Usage: perf_compare.py NEW_JSON BASELINE_JSON [--threshold 1.25]

Row matching is by trial-group label. Every group in the BASELINE must be
present in the new report — a vanished group means a renamed or deleted
bench configuration and fails the gate with a per-row error (never a bare
KeyError). Groups only present in the new report are listed and ignored:
adding a bench row must not fail CI until it is baselined.

Gated metrics per shared group:

  * ``exec_ms_min`` (falling back to the harness-emitted ``min_ms``) —
    wall-clock regression gate. Fails when new > baseline * threshold
    (default +25%). Faster is never a failure; a speedup beyond the
    inverse threshold prints a re-baseline hint.
  * ``fabric_kb``    — deterministic traffic; any drift beyond 0.1% is a
    correctness regression (a second byte-accounting path, a protocol
    change without a re-baseline) and fails regardless of timing.
  * ``bytes_per_node`` — resident heap footprint (bench_memory). Gated at
    ±15% (``--memory-threshold``): growth is a memory regression, and a
    shrink past the band means the diet moved and the baseline is stale —
    both fail so the committed number stays honest.

Reports carrying non-finite numbers (Infinity/NaN — e.g. the ±inf identity
extrema of a zero-sample stats group) are malformed and exit 2 with a clear
error, never a traceback.

Exit status: 0 clean, 1 regression/missing row, 2 usage/format error.
"""

from __future__ import annotations

import argparse
import json
import math
import sys


class FormatError(Exception):
    """A structurally malformed report (not a perf regression)."""


def _reject_constant(token: str):
    # Python's json quietly accepts Infinity/-Infinity/NaN; a report
    # carrying one (an unguarded ±inf extremum from a zero-sample group)
    # is malformed, not comparable — fail with a clear format error.
    raise FormatError(f"non-finite JSON constant {token!r} in report")


def load_report(path: str) -> dict:
    with open(path) as f:
        return json.load(f, parse_constant=_reject_constant)


def metrics_by_group(report: dict, path: str) -> dict[str, dict[str, float]]:
    if not isinstance(report, dict):
        raise FormatError(f"{path}: top level is not an object")
    out: dict[str, dict[str, float]] = {}
    for i, group in enumerate(report.get("trial_groups", [])):
        if not isinstance(group, dict) or "label" not in group:
            raise FormatError(
                f"{path}: trial_groups[{i}] is malformed (no label)")
        metrics = {
            k: v for k, v in group.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        }
        for k, v in metrics.items():
            if not math.isfinite(v):
                raise FormatError(
                    f"{path}: group {group['label']!r} metric {k!r} is "
                    f"non-finite ({v}) — a zero-sample stats group leaked "
                    "into the report")
        out[group["label"]] = metrics
    return out


def wall_metric(row: dict[str, float]) -> tuple[str, float] | None:
    """The gated wall-clock metric: the bench's explicit exec_ms_min when
    present, else the harness-emitted per-trial min_ms."""
    for key in ("exec_ms_min", "min_ms"):
        if key in row and row[key] > 0:
            return key, row[key]
    return None


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(prog="perf_compare", description=__doc__)
    ap.add_argument("new_json")
    ap.add_argument("baseline_json")
    ap.add_argument("--threshold", type=float, default=1.25,
                    help="allowed slowdown ratio (default 1.25 = +25%%)")
    ap.add_argument("--memory-threshold", type=float, default=0.15,
                    help="allowed bytes_per_node drift, either direction "
                         "(default 0.15 = ±15%%)")
    args = ap.parse_args(argv)

    try:
        new = metrics_by_group(load_report(args.new_json), args.new_json)
        base = metrics_by_group(load_report(args.baseline_json),
                                args.baseline_json)
    except (OSError, json.JSONDecodeError, FormatError) as e:
        print(f"perf_compare: {e}", file=sys.stderr)
        return 2

    if not base:
        print(f"perf_compare: {args.baseline_json} has no trial groups",
              file=sys.stderr)
        return 2

    failures = 0
    for label in sorted(set(base) - set(new)):
        print(f"{label}: MISSING from {args.new_json} — baseline row has no "
              "counterpart (renamed or deleted bench configuration?)")
        failures += 1
    for label in sorted(set(new) - set(base)):
        print(f"{label}: new group (not in baseline) — ignored; re-baseline "
              "to start gating it")

    for label in sorted(set(new) & set(base)):
        n, b = new[label], base[label]
        base_wall = wall_metric(b)
        if base_wall is not None:
            key, base_ms = base_wall
            if key not in n or n[key] <= 0:
                print(f"{label}: {key} missing from new report")
                failures += 1
            else:
                ratio = n[key] / base_ms
                verdict = "OK"
                if ratio > args.threshold:
                    verdict = "REGRESSION"
                    failures += 1
                elif ratio < 1.0 / args.threshold:
                    verdict = "OK (faster — consider re-baselining)"
                print(f"{label}: {key} {base_ms:.2f} -> "
                      f"{n[key]:.2f} ({ratio:.2f}x)  {verdict}")
        if "bytes_per_node" in n and "bytes_per_node" in b \
                and b["bytes_per_node"] > 0:
            ratio = n["bytes_per_node"] / b["bytes_per_node"]
            drift = ratio - 1.0
            if abs(drift) > args.memory_threshold:
                kind = ("MEMORY REGRESSION" if drift > 0
                        else "MEMORY SHRINK — re-baseline")
                print(f"{label}: bytes_per_node {b['bytes_per_node']:.1f} -> "
                      f"{n['bytes_per_node']:.1f} ({ratio:.2f}x)  {kind}")
                failures += 1
            else:
                print(f"{label}: bytes_per_node {b['bytes_per_node']:.1f} -> "
                      f"{n['bytes_per_node']:.1f} ({ratio:.2f}x)  OK")
        if "fabric_kb" in n and "fabric_kb" in b and b["fabric_kb"] > 0:
            drift = abs(n["fabric_kb"] - b["fabric_kb"]) / b["fabric_kb"]
            if drift > 1e-3:
                print(f"{label}: fabric_kb {b['fabric_kb']:.1f} -> "
                      f"{n['fabric_kb']:.1f}  BYTE-ACCOUNTING DRIFT")
                failures += 1

    if failures:
        print(f"perf_compare: {failures} regression(s)", file=sys.stderr)
        return 1
    print(f"perf_compare: {len(set(new) & set(base))} group(s) within "
          "threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
