// Fixture: MAC verification results discarded — a message accepted
// without a checked MAC.
#include <cstdint>
#include <span>

#include "crypto/mac.h"

namespace vmat_fixture {

inline void accept(const vmat::MacContext& ctx,
                   std::span<const std::uint8_t> msg, const vmat::Mac& tag) {
  ctx.verify(msg, tag);               // mac-verify-discarded (line 12)
}

inline void accept_oneshot(const vmat::SymmetricKey& key,
                           std::span<const std::uint8_t> msg,
                           const vmat::Mac& tag) {
  verify_mac(key, msg, tag);          // mac-verify-discarded (line 18)
}

}  // namespace vmat_fixture
