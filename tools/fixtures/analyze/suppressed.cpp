// vmat-analyze fixture: every suppression form the analyzer honours —
// same-line allow(), line-above allow(), and whole-file allow-file().
// Each suppressed site is a true positive elsewhere in this tree, so a
// broken suppression path shows up as a nonzero count here.
// Expected findings: 0.
//
// vmat-analyze: allow-file(expected-discarded) -- fixture: exercises the
// whole-file form; the discard below is intentional.

namespace fake {

struct ThreadPool {};

template <typename F>
void for_each_shard(unsigned long n, unsigned long shards, ThreadPool& pool,
                    F fn) {
  (void)shards;
  (void)pool;
  fn(0ul, 0ul, n);
}

}  // namespace fake

struct Error {
  int code = 0;
};

template <typename T>
class Expected {
 public:
  Expected(T v) : value_(v), ok_(true) {}
  Expected(Error e) : err_(e), ok_(false) {}
  explicit operator bool() const { return ok_; }

 private:
  T value_{};
  Error err_{};
  bool ok_ = true;
};

Expected<int> parse_frame();

struct Writer {
  void pod_u64(unsigned long v);
};

struct Reader {
  unsigned long pod_u64();
};

void covered_by_allow_file() {
  parse_frame();  // silenced by the allow-file() in the header comment
}

void same_line_allow(fake::ThreadPool& pool) {
  unsigned long total = 0;
  fake::for_each_shard(
      8ul, 2ul, pool,
      [&total](unsigned long shard, unsigned long begin, unsigned long end) {
        (void)shard;
        (void)begin;
        total += end;  // vmat-analyze: allow(shard-race) -- fixture: same-line form
      });
}

class LineAboveAllow {
 public:
  void snapshot_save(Writer& w) const { w.pod_u64(kept_); }
  void snapshot_load(Reader& r) { kept_ = r.pod_u64(); }

 private:
  unsigned long kept_ = 0;
  // vmat-analyze: allow(snapshot-field-coverage) -- fixture: line-above form
  unsigned long scratch_ = 0;
};
