// vmat-analyze fixture: shard-race positives. Every write below targets
// state shared across shard workers without going through an indexed
// per-shard/per-node slot. Expected findings: 5 (see tests/test_analyze.cpp).
//
// Self-contained on purpose: fixtures parse without the project headers so
// the self-test runs even when compile_commands.json is absent.

namespace fake {

struct ThreadPool {};

template <typename F>
void for_each_shard(unsigned long n, unsigned long shards, ThreadPool& pool,
                    F fn) {
  (void)shards;
  (void)pool;
  fn(0ul, 0ul, n);
}

}  // namespace fake

struct Log {
  void add(int v) { n_ += v; }
  int n_ = 0;
};

long g_collisions = 0;

void unsynchronised_totals(fake::ThreadPool& pool, Log& log) {
  unsigned long total = 0;
  unsigned long last = 0;
  fake::for_each_shard(
      64ul, 4ul, pool,
      [&total, &last, &log](unsigned long shard, unsigned long begin,
                            unsigned long end) {
        for (unsigned long id = begin; id < end; ++id) {
          total += id;   // finding: by-ref capture, not shard-indexed
          log.add(1);    // finding: mutating method on by-ref capture
        }
        last = shard;    // finding: by-ref capture, not shard-indexed
        ++g_collisions;  // finding: global written from every shard
      });
}

class Collector {
 public:
  void run(fake::ThreadPool& pool) {
    fake::for_each_shard(
        64ul, 4ul, pool,
        [this](unsigned long shard, unsigned long begin, unsigned long end) {
          (void)shard;
          (void)begin;
          (void)end;
          hits_ = hits_ + 1;  // finding: member write via captured this
        });
  }

 private:
  unsigned long hits_ = 0;
};
