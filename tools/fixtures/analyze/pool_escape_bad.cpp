// vmat-analyze fixture: pool-escape positives — ref-capturing callables
// whose lifetime is not bounded by the frame that owns the captures: one
// returned, one stored into a member queue, one handed to a thread, one
// assigned to a global. Expected findings: 4.

struct Task {
  Task();
  template <typename F>
  Task(F f);
  template <typename F>
  Task& operator=(F f);
};

struct TaskQueue {
  template <typename F>
  void push_back(F f);
};

struct thread {
  template <typename F>
  thread(F f);
};

void consume(int v);

Task make_task() {
  int local = 0;
  return Task([&local] { consume(local); });  // finding: returned callable
}

class Scheduler {
 public:
  void arm() {
    int deadline = 5;
    // finding: member queue outlives arm()'s frame
    pending_.push_back([&deadline] { consume(deadline); });
  }

 private:
  TaskQueue pending_;
};

void spawn_detached() {
  int budget = 3;
  thread worker([&budget] { consume(budget); });  // finding: async lifetime
}

Task g_task;

void arm_global() {
  int n = 1;
  g_task = [&n] { consume(n); };  // finding: global store
}
