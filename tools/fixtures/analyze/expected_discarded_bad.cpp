// vmat-analyze fixture: expected-discarded positives — a bare statement
// discard, a (void)-cast discard, and an error path that manufactures a
// fresh Error while dropping the one it was handed. Expected findings: 3.

struct Error {
  int code = 0;
};

template <typename T>
class Expected {
 public:
  Expected(T v) : value_(v), ok_(true) {}
  Expected(Error e) : err_(e), ok_(false) {}
  explicit operator bool() const { return ok_; }
  [[nodiscard]] const T& value() const { return value_; }
  [[nodiscard]] const Error& error() const { return err_; }

 private:
  T value_{};
  Error err_{};
  bool ok_ = true;
};

Expected<int> parse_frame();

void drop_by_statement() {
  parse_frame();  // finding: Expected result discarded
}

void drop_by_cast() {
  (void)parse_frame();  // finding: Expected result void-cast away
}

Expected<int> drop_error_code() {
  Expected<int> r = parse_frame();
  if (!r) {
    return Expected<int>(Error{7});  // finding: r.error() dropped
  }
  return r;
}
