// vmat-analyze fixture: shard-race negatives. Every construct here is the
// sanctioned shard discipline — indexed per-node/per-shard slots, shard-
// local accumulation, by-value captures, and the documented shard-safe
// accessors. Expected findings: 0.

namespace fake {

struct ThreadPool {};

template <typename F>
void for_each_shard(unsigned long n, unsigned long shards, ThreadPool& pool,
                    F fn) {
  (void)shards;
  (void)pool;
  fn(0ul, 0ul, n);
}

}  // namespace fake

struct Trace {
  Trace shard(unsigned long i);  // per-shard handle: documented shard-safe
  void mark(unsigned long v);
};

struct Slots {
  int& at(unsigned long i);
  int cells[8];
};

void disciplined_shards(fake::ThreadPool& pool, unsigned long (&counts)[128],
                        Slots& slots, Trace& tracer) {
  unsigned long grand_total = 0;
  fake::for_each_shard(
      128ul, 4ul, pool,
      [&counts, &slots, &tracer, grand_total](
          unsigned long shard, unsigned long begin,
          unsigned long end) mutable {
        Trace local_trace = tracer.shard(shard);  // shard-safe accessor
        unsigned long local_total = 0;            // shard-local state
        auto bump = [&](unsigned long v) { local_total += v; };
        for (unsigned long id = begin; id < end; ++id) {
          counts[id] += 1;    // indexed by the shard's contiguous id range
          slots.at(id) = 1;   // indexed through at()
          bump(id);
          local_trace.mark(id);  // local object, free to mutate
        }
        grand_total += local_total;  // by-value capture: mutates the copy
      });
}
