// vmat-analyze fixture: expected-discarded negatives — propagation,
// consulting error() on the error path, discarding a non-Expected result,
// and a success-only branch. Expected findings: 0.

struct Error {
  int code = 0;
};

template <typename T>
class Expected {
 public:
  Expected(T v) : value_(v), ok_(true) {}
  Expected(Error e) : err_(e), ok_(false) {}
  explicit operator bool() const { return ok_; }
  [[nodiscard]] const T& value() const { return value_; }
  [[nodiscard]] const Error& error() const { return err_; }

 private:
  T value_{};
  Error err_{};
  bool ok_ = true;
};

Expected<int> parse_frame();
int side_effect();
void log_code(int code);
void use_value(int v);

Expected<int> propagate() {
  Expected<int> r = parse_frame();
  if (!r) {
    return r;  // ok: the error object travels with the return
  }
  return r;
}

Expected<int> wrap_with_context() {
  Expected<int> r = parse_frame();
  if (!r) {
    log_code(r.error().code);  // ok: the underlying code is consulted
    return Expected<int>(Error{r.error().code});
  }
  return r;
}

void plain_discard_is_fine() {
  (void)side_effect();  // ok: not an Expected/Error/Status result
  side_effect();        // ok: plain int statement
}

void success_only_branch() {
  Expected<int> r = parse_frame();
  if (r) {
    use_value(r.value());  // ok: no error branch to judge
  }
}
