// vmat-analyze fixture: pool-escape negatives — by-value captures may go
// anywhere, ref captures are fine for the synchronous pool entry points
// (they join before returning) and for locally drained queues. Expected
// findings: 0.

struct Task {
  Task();
  template <typename F>
  Task(F f);
  template <typename F>
  Task& operator=(F f);
};

struct TaskQueue {
  template <typename F>
  void push_back(F f);
};

struct ThreadPool {
  template <typename F>
  void for_each(unsigned long n, F f);
};

void consume(int v);
void drain(TaskQueue& q);

Task make_owned_task() {
  int local = 7;
  return Task([local] { consume(local); });  // ok: capture by value
}

void synchronous_pool(ThreadPool& pool, int (&acc)[8]) {
  int base = 2;
  // ok: for_each joins before returning, captures cannot dangle
  pool.for_each(8ul, [&acc, &base](unsigned long i) {
    acc[i] = base;
  });
}

void local_queue() {
  int n = 4;
  TaskQueue q;
  q.push_back([&n] { consume(n); });  // ok: q is drained in this frame
  drain(q);
}

Task g_owned;

void arm_global_by_value() {
  int n = 9;
  g_owned = [n] { consume(n); };  // ok: the callable owns its state
}
