// vmat-analyze fixture: snapshot-field-coverage positive. DriftingCounter
// serializes sent_ but deliberately omits dropped_ — exactly the drift that
// corrupts forked executions (the runtime twin lives in
// tests/test_snapshot.cpp, SnapshotDrift.*). Expected findings: 1.

struct Writer {
  void pod_u64(unsigned long v);
};

struct Reader {
  unsigned long pod_u64();
};

class DriftingCounter {
 public:
  void record(unsigned long n, bool lost) {
    sent_ += n;
    if (lost) dropped_ += n;
  }

  void snapshot_save(Writer& w) const { w.pod_u64(sent_); }

  void snapshot_load(Reader& r) { sent_ = r.pod_u64(); }

 private:
  unsigned long sent_ = 0;
  unsigned long dropped_ = 0;  // finding: never touched by the pair
};
