// vmat-analyze fixture: snapshot-field-coverage negatives. CoveredCounter
// touches every member across the pair (touching a field in *either* body
// counts); HeaderOnly declares the pair but defines it elsewhere, so this
// TU cannot judge coverage and the rule must stay silent; SaveOnly has no
// matching pair at all. Expected findings: 0.

struct Writer {
  void pod_u64(unsigned long v);
};

struct Reader {
  unsigned long pod_u64();
};

class CoveredCounter {
 public:
  void snapshot_save(Writer& w) const {
    w.pod_u64(sent_);
    w.pod_u64(dropped_);
  }

  void snapshot_load(Reader& r) {
    sent_ = r.pod_u64();
    dropped_ = r.pod_u64();
  }

 private:
  unsigned long sent_ = 0;
  unsigned long dropped_ = 0;
};

class HeaderOnly {
 public:
  void snapshot_save(Writer& w) const;  // defined in another TU
  void snapshot_load(Reader& r);

 private:
  unsigned long opaque_ = 0;
};

class SaveOnly {
 public:
  void snapshot_save(Writer& w) const { w.pod_u64(epoch_); }

 private:
  unsigned long epoch_ = 0;
  unsigned long scratch_ = 0;  // no pair, no coverage obligation
};
