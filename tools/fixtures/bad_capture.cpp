// Fixture: default captures in ThreadPool task lambdas hide shared
// mutable state from review.
#include <cstdint>
#include <vector>

#include "util/parallel.h"

namespace vmat_fixture {

inline void hammer(vmat::ThreadPool& pool, std::vector<std::uint64_t>& out) {
  pool.for_each(out.size(),
                [&](std::size_t i) {  // threadpool-ref-capture (line 11)
                  out[i] = i;
                });
  vmat::parallel_for_trials(
      out.size(), 3,
      [=](std::size_t, vmat::Rng&) {  // threadpool-ref-capture (line 15)
      },
      &pool);
}

}  // namespace vmat_fixture
