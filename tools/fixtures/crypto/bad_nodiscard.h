// Fixture: value-returning crypto APIs missing [[nodiscard]] (this file's
// fixture path contains a `crypto` component, which is what the rule keys
// on).
#pragma once

#include <cstdint>

namespace vmat_fixture {

class Verifier {
 public:
  explicit Verifier(std::uint64_t key) noexcept : key_(key) {}

  bool verify(std::uint64_t tag) const noexcept {  // missing-nodiscard (14)
    return tag == key_;
  }

  [[nodiscard]] std::uint64_t key() const noexcept { return key_; }

  void reset(std::uint64_t key) noexcept { key_ = key; }  // fine: void

  std::uint64_t bump() noexcept { return ++key_; }  // fine: mutator

 private:
  std::uint64_t key_;
};

std::uint64_t derive_subkey(std::uint64_t key,
                            std::uint64_t index) noexcept;  // missing (28)

[[nodiscard]] std::uint64_t derive_epoch_key(std::uint64_t key,
                                             std::uint64_t epoch) noexcept;

}  // namespace vmat_fixture
