// Fixture: a file that trips no vmat-lint rule. Mentions of mt19937 and
// std::cout inside comments and strings must be ignored by the stripper.
#include <cstdint>
#include <vector>

#include "util/parallel.h"
#include "util/random.h"

namespace vmat_fixture {

const char* kBanner = "std::mt19937 rand() std::cout memcpy(key, src, n)";

inline std::uint64_t draw(vmat::Rng& rng) { return rng.below(100); }

inline void trials(vmat::ThreadPool& pool, std::vector<std::uint64_t>& out) {
  vmat::parallel_for_trials(
      out.size(), 7,
      [&out](std::size_t trial, vmat::Rng& rng) { out[trial] = draw(rng); },
      &pool);
}

}  // namespace vmat_fixture
