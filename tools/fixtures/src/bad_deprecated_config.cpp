// Fixture: use of the pre-SimulationSpec [[deprecated]] config names inside
// src/ (this file's fixture path contains a `src` component, which is what
// the rule keys on). The shims exist for downstream callers only.
namespace vmat_fixture {

struct NetworkSpec {
  int revocation_threshold = 0;
};
using NetworkConfig = NetworkSpec;  // deprecated-config (line 9)

inline int ring_budget() {
  NetworkConfig cfg;  // deprecated-config (line 12)
  // String and comment mentions of VmatConfig must not count.
  const char* note = "VmatConfig";
  (void)note;
  return cfg.revocation_threshold;
}

inline int suppressed_use() {
  NetworkConfig cfg;  // vmat-lint: allow(deprecated-config)
  return cfg.revocation_threshold;
}

}  // namespace vmat_fixture
