// Fixture: snapshot-unsafe-state — a snapshot-captured class (one with a
// snapshot_save() member) holding members the flat buffer cannot encode.
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace vmat {

class SnapshotWriter;

struct BadCapturedState {
  void snapshot_save(SnapshotWriter& writer) const;
  std::unordered_map<std::uint64_t, int> cache_;  // hash order leaks
  int* scratch_;                                  // unowned mutable pointee
  const char* label_{nullptr};   // const pointee: fingerprinted identity
  std::vector<int> slots_;       // flat vector: the sanctioned form
  struct Entry {
    int* cursor_;  // nested helper: captured via its own encode
  };
};

struct NotCaptured {  // no snapshot_save(): the rule does not apply
  std::unordered_map<int, int> free_form_;
  int* raw_;
};

}  // namespace vmat
