// Fixture: hot-path-alloc — allocation inside per-frame loops. Lines are
// referenced by tests/test_lint.cpp; keep numbering stable.
#include "sim/network.h"

namespace vmat {

void drain(Network& net, NodeId node) {
  for (const Frame& f : net.fabric().take_inbox(node)) {
    Bytes copy(f.payload.begin(), f.payload.end());  // line 9: flagged
    std::vector<std::uint8_t> staged;                // line 10: flagged
    (void)copy;
    (void)staged;
  }
  for (const auto& env : net.receive_valid(node)) {
    // vmat-lint: allow(hot-path-alloc) -- deliberate one-time copy
    Bytes kept(env.payload.begin(), env.payload.end());
    (void)kept;
  }
  // Outside any per-frame loop: not the hot path, not flagged.
  Bytes scratch(64, 0);
  (void)scratch;
  for (const Frame& f : net.fabric().take_inbox(node)) {
    const std::vector<std::uint8_t>& view = f.payload_storage;  // line 23:
    (void)view;  // reference binding allocates nothing: not flagged
  }
}

}  // namespace vmat
