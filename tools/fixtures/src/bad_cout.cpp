// Fixture: direct stdout inside src/ (this file's fixture path contains a
// `src` component, which is what the rule keys on).
#include <cstdio>
#include <iostream>

namespace vmat_fixture {

inline void narrate(int rounds) {
  std::cout << "rounds=" << rounds << "\n";  // stdout-in-src (line 9)
  printf("rounds=%d\n", rounds);             // stdout-in-src (line 10)
  char buf[32];
  std::snprintf(buf, sizeof buf, "%d", rounds);  // fine: buffer formatting
}

}  // namespace vmat_fixture
