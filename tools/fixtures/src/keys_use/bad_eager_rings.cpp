// Fixture: eager-ring-materialization — containers of materialized rings
// and whole-network ring() sweeps (the pre-diet provisioning shape). The
// ring_contains() sweep and the allow()-suppressed sweep must stay clean.
#include "keys/predistribution.h"

namespace vmat {

struct EagerRingCache {
  std::vector<KeyRing> rings_;  // flagged: pre-diet container shape
};

inline std::size_t sweep_all_rings(const Predistribution& keys) {
  std::size_t total = 0;
  for (std::uint32_t id = 0; id < keys.node_count(); ++id)
    total += keys.ring(NodeId{id}).size();  // flagged: per-node ring()
  return total;
}

inline bool lazy_membership_sweep(const Predistribution& keys) {
  bool any = false;
  for (std::uint32_t id = 0; id < keys.node_count(); ++id)
    any = any || keys.ring_contains(NodeId{id}, KeyIndex{3});  // clean
  return any;
}

inline void sanctioned_sweep(const Predistribution& keys) {
  for (std::uint32_t id = 0; id < keys.node_count(); ++id)
    // vmat-lint: allow(eager-ring-materialization)
    (void)keys.ring(NodeId{id});
}

}  // namespace vmat
