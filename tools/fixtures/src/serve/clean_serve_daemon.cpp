// Fixture: src/serve/ is a sanctioned output sink — vmatd prints operator
// status lines (and only when stdout is not the protocol channel, so the
// frame stream stays clean). stdout-in-src must NOT fire anywhere under a
// serve/ component.
#include <cstdio>
#include <iostream>

namespace fixture {

inline void announce_session(unsigned tenants, bool log) {
  if (log) std::printf("vmatd: serving %u tenant(s)\n", tenants);
}

inline void announce_shutdown(unsigned long long ticks) {
  std::cout << "vmatd: shutdown after " << ticks << " tick(s)\n";
}

}  // namespace fixture
