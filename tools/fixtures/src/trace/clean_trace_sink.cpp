// Fixture: src/trace/ is a sanctioned output sink — the flight recorder
// prints the path of the trace file it wrote, mirroring BenchReport::write.
// stdout-in-src must NOT fire anywhere under a trace/ component.
#include <cstdio>
#include <string>

namespace fixture {

inline void announce_trace_file(const std::string& path) {
  std::printf("[trace] wrote %s\n", path.c_str());
}

}  // namespace fixture
