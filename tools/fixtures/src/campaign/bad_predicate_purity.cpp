// Fixture: predicate-purity — campaign trigger predicates must keep
// evaluate() const-qualified, RNG-free, and effect-free. Expected:
// line 10 (non-const evaluate), line 11 (member mutation), line 19
// (RNG draw). The pure and allow()-suppressed forms stay silent.
namespace vmat::campaign {

struct TriggerState { int slot{0}; };

struct CountingPredicate {
  bool evaluate(const TriggerState& state) {
    ++evals_;
    return state.slot > 0;
  }
  long evals_{0};
};

struct FlakyPredicate {
  bool evaluate(const TriggerState& state) const {
    return vmat::Rng(7).below(2) == 0 && state.slot > 0;
  }
};

struct PurePredicate {
  bool evaluate(const TriggerState& state) const {
    return state.slot > 0;
  }
};

struct SuppressedPredicate {
  // vmat-lint: allow(predicate-purity)
  bool evaluate(const TriggerState& state) { return state.slot > 0; }
};

}  // namespace vmat::campaign
