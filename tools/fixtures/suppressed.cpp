// Fixture: every violation here carries a vmat-lint suppression, so the
// file must lint clean. Exercises same-line, previous-line, and file-level
// suppression syntax.
//
// vmat-lint: allow-file(key-memcpy)
#include <cstdlib>
#include <cstring>
#include <random>

#include "util/parallel.h"

namespace vmat_fixture {

inline int legacy_roll() {
  std::mt19937 gen(1);  // vmat-lint: allow(determinism-rng)
  return static_cast<int>(gen() % 6);
}

inline int legacy_roll_libc() {
  // vmat-lint: allow(determinism-rng)
  return rand() % 6;
}

inline void copy_key(std::uint8_t* dst, const std::uint8_t* key_bytes) {
  std::memcpy(dst, key_bytes, 16);  // allowed file-wide above
}

inline void hammer(vmat::ThreadPool& pool, std::uint64_t* out,
                   std::size_t n) {
  // vmat-lint: allow(threadpool-ref-capture)
  pool.for_each(n, [&](std::size_t i) { out[i] = i; });
}

}  // namespace vmat_fixture
