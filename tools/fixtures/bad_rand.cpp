// Fixture: raw RNG engines outside src/util/random.* — breaks the
// (base_seed, trial_index) determinism contract.
#include <cstdlib>
#include <random>

namespace vmat_fixture {

inline int roll_engine() {
  std::mt19937 gen(12345);            // determinism-rng (line 9)
  return static_cast<int>(gen());
}

inline int roll_device() {
  std::random_device rd;              // determinism-rng (line 14)
  return static_cast<int>(rd());
}

inline int roll_libc() {
  return rand() % 6;                  // determinism-rng (line 19)
}

}  // namespace vmat_fixture
