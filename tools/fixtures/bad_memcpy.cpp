// Fixture: raw memcpy on key material outside src/crypto/ and
// src/util/bytes.*.
#include <cstdint>
#include <cstring>

namespace vmat_fixture {

struct Wire {
  std::uint8_t payload[16];
};

inline void leak_key(Wire& w, const std::uint8_t* key_bytes) {
  std::memcpy(w.payload, key_bytes, sizeof w.payload);  // key-memcpy (line 13)
}

inline void copy_plain(Wire& w, const std::uint8_t* body) {
  std::memcpy(w.payload, body, sizeof w.payload);  // fine: not key material
}

}  // namespace vmat_fixture
