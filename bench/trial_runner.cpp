#include "trial_runner.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <optional>

#include "crypto/mac_batch.h"
#include "sim/fabric.h"
#include "util/stats.h"

namespace vmat::bench {

bool smoke() {
  const char* env = std::getenv("VMAT_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}

std::size_t trials(std::size_t full) {
  if (const char* env = std::getenv("VMAT_BENCH_TRIALS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) return static_cast<std::size_t>(v);
  }
  if (smoke()) return full < 2 ? full : 2;
  return full;
}

// --- JsonWriter ---

JsonWriter::JsonWriter() { first_in_scope_.push_back(true); }

void JsonWriter::comma() {
  if (!first_in_scope_.back()) out_ += ',';
  first_in_scope_.back() = false;
}

void JsonWriter::key(const std::string& k) {
  comma();
  out_ += '"';
  out_ += escaped(k);
  out_ += "\":";
}

std::string JsonWriter::escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::begin_object(const std::string& k) {
  key(k);
  out_ += '{';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array(const std::string& k) {
  key(k);
  out_ += '[';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  first_in_scope_.pop_back();
  return *this;
}

namespace {

std::string number(double v) {
  // JSON has no inf/nan literal: a %.6g "inf" (e.g. the ±inf identity
  // extrema of an empty RunningStats serialized into a report) would make
  // the whole file unparseable and take the perf gate down with it. Every
  // non-finite value becomes null at this choke point.
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

JsonWriter& JsonWriter::field(const std::string& k, const std::string& v) {
  key(k);
  out_ += '"';
  out_ += escaped(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& k, const char* v) {
  return field(k, std::string(v));
}

JsonWriter& JsonWriter::field(const std::string& k, double v) {
  key(k);
  out_ += number(v);
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& k, std::int64_t v) {
  key(k);
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& k, std::uint64_t v) {
  key(k);
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& k, bool v) {
  key(k);
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::element(double v) {
  comma();
  out_ += number(v);
  return *this;
}

// --- BenchReport ---

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

void BenchReport::config(std::string key, std::string value) {
  config_.push_back({std::move(key), ConfigKind::kString, std::move(value), 0, 0.0});
}

void BenchReport::config(std::string key, std::int64_t value) {
  config_.push_back({std::move(key), ConfigKind::kInt, {}, value, 0.0});
}

void BenchReport::config(std::string key, double value) {
  config_.push_back({std::move(key), ConfigKind::kDouble, {}, 0, value});
}

TrialGroup& BenchReport::group(std::string label) {
  groups_.push_back(TrialGroup{std::move(label), {}, {}});
  return groups_.back();
}

void BenchReport::result(std::string key, double value) {
  results_.emplace_back(std::move(key), value);
}

namespace {

/// `git rev-parse HEAD`, or "unknown" outside a work tree / without git.
std::string git_sha() {
  std::string sha = "unknown";
  if (FILE* pipe = popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    if (std::fgets(buf, sizeof buf, pipe) != nullptr) {
      std::string line(buf);
      while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
        line.pop_back();
      if (!line.empty()) sha = line;
    }
    pclose(pipe);
  }
  return sha;
}

const char* mac_kernel_name(MacBatch::Impl impl) {
  switch (impl) {
    case MacBatch::Impl::kAuto: return "auto";
    case MacBatch::Impl::kScalar: return "scalar";
    case MacBatch::Impl::kShaNiX2: return "sha-ni-x2";
    case MacBatch::Impl::kAvx2X8: return "avx2-x8";
  }
  return "?";
}

}  // namespace

void BenchReport::write() const {
  JsonWriter w;
  w.begin_object();
  w.field("bench", name_);
  w.field("smoke", smoke());
  w.field("threads", static_cast<std::uint64_t>(default_thread_count()));

  // Run provenance: enough to reproduce (or discount) a perf comparison.
  w.begin_object("meta");
  w.field("git_sha", git_sha());
  const char* threads_env = std::getenv("VMAT_THREADS");
  w.field("vmat_threads", threads_env != nullptr ? threads_env : "");
  w.field("exec_threads",
          static_cast<std::uint64_t>(intra_execution_threads()));
  w.field("mac_kernel", mac_kernel_name(MacBatch::active_impl()));
  w.field("snapshot_fork", snapshots_enabled());
  w.end_object();

  w.begin_object("config");
  for (const auto& c : config_) {
    switch (c.kind) {
      case ConfigKind::kString: w.field(c.key, c.s); break;
      case ConfigKind::kInt: w.field(c.key, c.i); break;
      case ConfigKind::kDouble: w.field(c.key, c.d); break;
    }
  }
  w.end_object();

  double total_ms = 0.0;
  w.begin_array("trial_groups");
  for (const auto& g : groups_) {
    w.begin_object();
    w.field("label", g.label);
    w.field("trials", static_cast<std::uint64_t>(g.trial_ms.size()));
    if (!g.trial_ms.empty()) {
      w.field("mean_ms", mean(g.trial_ms));
      w.field("min_ms", percentile_nearest_rank(g.trial_ms, 0));
      w.field("p95_ms", percentile_nearest_rank(g.trial_ms, 95));
      w.field("max_ms", percentile_nearest_rank(g.trial_ms, 100));
      w.begin_array("trial_ms");
      for (const double t : g.trial_ms) {
        w.element(t);
        total_ms += t;
      }
      w.end_array();
    }
    for (const auto& [k, v] : g.metrics) w.field(k, v);
    w.end_object();
  }
  w.end_array();

  w.begin_object("results");
  for (const auto& [k, v] : results_) w.field(k, v);
  w.end_object();

  w.field("total_trial_ms", total_ms);
  w.end_object();

  const std::string path = "BENCH_" + name_ + ".json";
  std::ofstream out(path);
  out << w.str() << '\n';
  std::printf("[json] wrote %s\n", path.c_str());
}

void add_phase_metrics(TrialGroup& group, const ExecutionMetrics& metrics) {
  auto emit = [&group](const std::string& prefix, const PhaseCounters& c) {
    group.metric(prefix + ".bytes_kb",
                 static_cast<double>(c.bytes_sent) / kBytesPerKb);
    group.metric(prefix + ".frames", static_cast<double>(c.frames_sent));
    group.metric(prefix + ".mac_verifies",
                 static_cast<double>(c.mac_verifies));
    group.metric(prefix + ".predicate_tests",
                 static_cast<double>(c.predicate_tests));
  };
  for (std::size_t p = 0; p < kTracePhaseCount; ++p) {
    const auto phase = static_cast<TracePhase>(p);
    const PhaseCounters& c = metrics.at(phase);
    if (c == PhaseCounters{}) continue;  // idle phases would just be noise
    emit(to_string(phase), c);
  }
  emit("totals", metrics.totals());
}

void timed_trials(TrialGroup& group, std::size_t n, std::uint64_t base_seed,
                  const std::function<void(std::size_t, Rng&)>& fn,
                  ThreadPool* pool) {
  group.trial_ms.assign(n, 0.0);
  parallel_for_trials(
      n, base_seed,
      [&group, &fn](std::size_t trial, Rng& rng) {
        const auto start = std::chrono::steady_clock::now();
        fn(trial, rng);
        group.trial_ms[trial] =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
      },
      pool);
}

void forked_timed_trials(TrialGroup& group, std::size_t n,
                         std::uint64_t base_seed, const ForkFactory& factory,
                         const ForkTrialFn& fn, ThreadPool* pool) {
  group.trial_ms.assign(n, 0.0);
  const bool sharing = snapshots_enabled();
  std::mutex idle_mutex;
  std::vector<std::unique_ptr<ForkDeployment>> idle;
  std::optional<Snapshot> shared;
  if (sharing) {
    // Capture the shared prefix once; the capture deployment then joins
    // the free list and serves forks like any other.
    std::unique_ptr<ForkDeployment> first = factory();
    shared = first->coordinator->snapshot_after_formation();
    idle.push_back(std::move(first));
  }
  parallel_for_trials(
      n, base_seed,
      [&group, &factory, &fn, &idle_mutex, &idle, &shared,
       sharing](std::size_t trial, Rng& rng) {
        std::unique_ptr<ForkDeployment> fork;
        if (sharing) {
          const std::lock_guard<std::mutex> lock(idle_mutex);
          if (!idle.empty()) {
            fork = std::move(idle.back());
            idle.pop_back();
          }
        }
        if (fork == nullptr) fork = factory();
        if (sharing) {
          const auto start = std::chrono::steady_clock::now();
          fn(trial, rng, *fork, *shared);
          group.trial_ms[trial] =
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
          const std::lock_guard<std::mutex> lock(idle_mutex);
          idle.push_back(std::move(fork));
        } else {
          // VMAT_SNAPSHOT=0: no cross-trial sharing, no recycling. The
          // private capture is bit-identical to the shared one (same
          // factory, same seed), so only the cost changes.
          const Snapshot priv = fork->coordinator->snapshot_after_formation();
          const auto start = std::chrono::steady_clock::now();
          fn(trial, rng, *fork, priv);
          group.trial_ms[trial] =
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
        }
      },
      pool);
}

}  // namespace vmat::bench
