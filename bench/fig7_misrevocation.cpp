// FIG7 — reproduces Figure 7: "Avg # of honest sensors mis-revoked under
// various threshold θ".
//
// Setup exactly as Section IX: each sensor holds r = 250 keys drawn
// uniformly from a pool of u = 100,000; network sizes n ∈ {1,000, 10,000};
// f ∈ {1, 5, 10, 20} malicious sensors; 100 trials per configuration. A
// honest sensor is mis-revoked at threshold θ if its ring shares >= θ keys
// with the union of the malicious rings (the keys the adversary can expose
// to frame it).
//
// Trials run on the parallel trial engine: each trial draws from its own
// (base_seed, trial) stream and tallies into a per-trial histogram, reduced
// serially afterwards — bit-identical for any VMAT_THREADS.
//
// Paper shape to match: f=1 -> θ ≈ 7 already gives ~0 mis-revocations;
// f=20 -> θ = 27 keeps the average below 1; θ stays ~10% of r.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "trial_runner.h"
#include "util/random.h"
#include "util/stats.h"

namespace {

constexpr std::uint32_t kPool = 100000;
constexpr std::uint32_t kRing = 250;
constexpr std::uint32_t kMaxTheta = 60;

/// Draw a ring of kRing distinct keys using a stamp array (O(r) expected,
/// no allocation) — the hot loop of this bench.
void draw_ring(vmat::Rng& rng, std::vector<std::uint32_t>& stamps,
               std::uint32_t mark, std::vector<std::uint32_t>& out) {
  out.clear();
  while (out.size() < kRing) {
    const auto k = static_cast<std::uint32_t>(rng.below(kPool));
    if (stamps[k] == mark) continue;
    stamps[k] = mark;
    out.push_back(k);
  }
}

struct Row {
  std::uint32_t n;
  std::uint32_t f;
  // Histogram over honest overlap counts, aggregated over all trials.
  std::vector<double> avg_misrevoked_at_theta;  // index = θ
};

Row run_config(std::uint32_t n, std::uint32_t f, std::uint64_t seed,
               std::size_t n_trials, vmat::bench::TrialGroup& group) {
  // Per-trial tails, reduced serially below (determinism contract).
  std::vector<std::vector<std::uint64_t>> per_trial(
      n_trials, std::vector<std::uint64_t>(kMaxTheta + 1, 0));

  vmat::bench::timed_trials(
      group, n_trials, seed, [&](std::size_t trial, vmat::Rng& rng) {
        std::vector<std::uint32_t> stamps(kPool, 0);
        std::vector<std::uint32_t> ring;
        std::vector<std::uint8_t> adversary_keys(kPool, 0);
        auto& misrevoked_ge_theta = per_trial[trial];
        std::uint32_t mark = 0;

        // Adversary key set: union of f malicious rings.
        for (std::uint32_t m = 0; m < f; ++m) {
          draw_ring(rng, stamps, ++mark, ring);
          for (std::uint32_t k : ring) adversary_keys[k] = 1;
        }
        // Honest sensors: n - f independent rings; tally overlap tails.
        for (std::uint32_t h = f; h < n; ++h) {
          draw_ring(rng, stamps, ++mark, ring);
          std::uint32_t overlap = 0;
          for (std::uint32_t k : ring) overlap += adversary_keys[k];
          if (overlap > kMaxTheta) overlap = kMaxTheta;
          // Sensor is mis-revoked for every θ <= overlap.
          for (std::uint32_t theta = 1; theta <= overlap; ++theta)
            ++misrevoked_ge_theta[theta];
        }
      });

  Row row;
  row.n = n;
  row.f = f;
  row.avg_misrevoked_at_theta.resize(kMaxTheta + 1, 0.0);
  for (std::uint32_t theta = 1; theta <= kMaxTheta; ++theta) {
    std::uint64_t total = 0;
    for (const auto& hist : per_trial) total += hist[theta];
    row.avg_misrevoked_at_theta[theta] =
        static_cast<double>(total) / static_cast<double>(n_trials);
  }
  return row;
}

}  // namespace

int main() {
  const std::size_t n_trials = vmat::bench::trials(100);
  std::printf(
      "FIG7 | Figure 7: avg # honest sensors mis-revoked vs threshold θ\n"
      "u=%u pool keys, r=%u keys/ring, %zu trials per configuration\n\n",
      kPool, kRing, n_trials);

  vmat::bench::BenchReport report("fig7_misrevocation");
  report.config("pool", static_cast<std::int64_t>(kPool));
  report.config("ring", static_cast<std::int64_t>(kRing));
  report.config("trials", static_cast<std::int64_t>(n_trials));

  const std::uint32_t thetas[] = {1, 3, 5, 7, 10, 15, 20, 25, 27, 30, 40};
  for (const std::uint32_t n : {1000u, 10000u}) {
    vmat::TablePrinter table([&] {
      std::vector<std::string> headers{"f \\ theta"};
      for (auto t : thetas) headers.push_back("t=" + std::to_string(t));
      headers.push_back("theta*(avg<1)");
      return headers;
    }());
    for (const std::uint32_t f : {1u, 5u, 10u, 20u}) {
      auto& group = report.group("n=" + std::to_string(n) +
                                 " f=" + std::to_string(f));
      const Row row = run_config(n, f, 0xf1670000 + n + f, n_trials, group);
      std::vector<std::string> cells{"f=" + std::to_string(f)};
      for (auto t : thetas)
        cells.push_back(
            vmat::TablePrinter::fmt(row.avg_misrevoked_at_theta[t], 2));
      // Smallest θ whose average mis-revocation drops below 1.
      std::uint32_t theta_star = 0;
      for (std::uint32_t t = 1; t < row.avg_misrevoked_at_theta.size(); ++t)
        if (row.avg_misrevoked_at_theta[t] < 1.0) {
          theta_star = t;
          break;
        }
      cells.push_back(std::to_string(theta_star));
      group.metric("theta_star", theta_star);
      table.add_row(cells);
    }
    std::printf("n = %u sensors:\n", n);
    table.print();
    std::printf("\n");
  }
  report.write();
  std::printf(
      "Shape checks vs paper: f=1 needs theta ~7; f=20 needs theta ~27 "
      "(about 10%% of r=250).\n");
  return 0;
}
