// MICRO — google-benchmark microbenchmarks for the crypto substrate and
// the per-step protocol primitives (infrastructure, not a paper figure).
#include <benchmark/benchmark.h>

#include "core/audit.h"
#include "core/synopsis.h"
#include "crypto/hash_chain.h"
#include "crypto/hmac.h"
#include "crypto/mac.h"
#include "crypto/prf.h"
#include "crypto/sha256.h"
#include "keys/key_ring.h"

namespace {

using namespace vmat;

void BM_Sha256(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) benchmark::DoNotOptimize(Sha256::hash(data));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key(16, 0x11);
  const Bytes msg(static_cast<std::size_t>(state.range(0)), 0x22);
  for (auto _ : state) benchmark::DoNotOptimize(hmac_sha256(key, msg));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(32)->Arg(256);

void BM_MacComputeVerify(benchmark::State& state) {
  const SymmetricKey key = derive_key("bench", 1, 2);
  const Bytes msg(48, 0x33);
  const Mac tag = compute_mac(key, msg);
  for (auto _ : state) benchmark::DoNotOptimize(verify_mac(key, msg, tag));
}
BENCHMARK(BM_MacComputeVerify);

// One-shot vs cached-key-schedule MAC throughput. The one-shot path pays
// the HMAC key schedule (ipad/opad compressions) on every call; the cached
// path pays it once per key and resumes the midstates per message.
void BM_MacOneShot(benchmark::State& state) {
  const SymmetricKey key = derive_key("bench", 5, 6);
  const Bytes msg(48, 0x44);
  for (auto _ : state) benchmark::DoNotOptimize(compute_mac(key, msg));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MacOneShot);

void BM_MacCachedSchedule(benchmark::State& state) {
  const SymmetricKey key = derive_key("bench", 5, 6);
  const MacContext ctx(key);
  const Bytes msg(48, 0x44);
  for (auto _ : state) benchmark::DoNotOptimize(ctx.compute(msg));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MacCachedSchedule);

void BM_PrfExponential(benchmark::State& state) {
  const SymmetricKey key = derive_key("bench", 3, 4);
  std::uint32_t i = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(prf_exponential(key, 7, 9, ++i, 5));
}
BENCHMARK(BM_PrfExponential);

void BM_SynopsisValue(benchmark::State& state) {
  const SynopsisCodec codec(99);
  std::uint32_t i = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(codec.value_for(NodeId{42}, ++i, 17));
}
BENCHMARK(BM_SynopsisValue);

void BM_HashChainVerify(benchmark::State& state) {
  const HashChain chain(1, 128);
  const auto distance = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        HashChain::verify(chain.element(distance), distance, chain.anchor(), 0));
}
BENCHMARK(BM_HashChainVerify)->Arg(1)->Arg(32)->Arg(127);

void BM_RingOverlap(benchmark::State& state) {
  const KeyRing a(1, 250, 100000);
  const KeyRing b(2, 250, 100000);
  for (auto _ : state) benchmark::DoNotOptimize(a.overlap(b));
}
BENCHMARK(BM_RingOverlap);

void BM_RingSample(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const KeyRing ring(++seed, 250, 100000);
    benchmark::DoNotOptimize(ring.size());
  }
}
BENCHMARK(BM_RingSample);

void BM_EvaluatePredicate(benchmark::State& state) {
  NodeAudit audit;
  audit.agg.level = 3;
  for (int i = 0; i < 8; ++i) {
    ForwardRecord f;
    f.msg.origin = NodeId{static_cast<std::uint32_t>(i)};
    f.msg.value = 100 + i;
    f.out_edge = KeyIndex{static_cast<std::uint32_t>(40 + i)};
    audit.agg.forwarded.push_back(f);
  }
  Predicate p;
  p.kind = PredicateKind::kAggForwardedValue;
  p.v_max = 104;
  p.level = 3;
  p.id_lo = NodeId{0};
  p.id_hi = NodeId{100};
  p.z_lo = KeyIndex{0};
  p.z_hi = KeyIndex{60};
  for (auto _ : state)
    benchmark::DoNotOptimize(evaluate_predicate(p, NodeId{5}, audit));
}
BENCHMARK(BM_EvaluatePredicate);

}  // namespace

BENCHMARK_MAIN();
