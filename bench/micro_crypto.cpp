// MICRO — google-benchmark microbenchmarks for the crypto substrate and
// the per-step protocol primitives (infrastructure, not a paper figure).
// Also emits BENCH_micro_crypto.json with the MacBatch lanes-vs-oneshot
// comparison through the shared bench harness.
#include <benchmark/benchmark.h>

#include <chrono>

#include "core/audit.h"
#include "core/synopsis.h"
#include "crypto/hash_chain.h"
#include "crypto/hmac.h"
#include "crypto/mac.h"
#include "crypto/mac_batch.h"
#include "crypto/prf.h"
#include "crypto/sha256.h"
#include "keys/key_ring.h"
#include "trial_runner.h"

namespace {

using namespace vmat;

void BM_Sha256(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) benchmark::DoNotOptimize(Sha256::hash(data));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key(16, 0x11);
  const Bytes msg(static_cast<std::size_t>(state.range(0)), 0x22);
  for (auto _ : state) benchmark::DoNotOptimize(hmac_sha256(key, msg));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(32)->Arg(256);

void BM_MacComputeVerify(benchmark::State& state) {
  const SymmetricKey key = derive_key("bench", 1, 2);
  const Bytes msg(48, 0x33);
  const Mac tag = compute_mac(key, msg);
  for (auto _ : state) benchmark::DoNotOptimize(verify_mac(key, msg, tag));
}
BENCHMARK(BM_MacComputeVerify);

// One-shot vs cached-key-schedule MAC throughput. The one-shot path pays
// the HMAC key schedule (ipad/opad compressions) on every call; the cached
// path pays it once per key and resumes the midstates per message.
void BM_MacOneShot(benchmark::State& state) {
  const SymmetricKey key = derive_key("bench", 5, 6);
  const Bytes msg(48, 0x44);
  for (auto _ : state) benchmark::DoNotOptimize(compute_mac(key, msg));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MacOneShot);

void BM_MacCachedSchedule(benchmark::State& state) {
  const SymmetricKey key = derive_key("bench", 5, 6);
  const MacContext ctx(key);
  const Bytes msg(48, 0x44);
  for (auto _ : state) benchmark::DoNotOptimize(ctx.compute(msg));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MacCachedSchedule);

void BM_PrfExponential(benchmark::State& state) {
  const SymmetricKey key = derive_key("bench", 3, 4);
  std::uint32_t i = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(prf_exponential(key, 7, 9, ++i, 5));
}
BENCHMARK(BM_PrfExponential);

void BM_SynopsisValue(benchmark::State& state) {
  const SynopsisCodec codec(99);
  std::uint32_t i = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(codec.value_for(NodeId{42}, ++i, 17));
}
BENCHMARK(BM_SynopsisValue);

void BM_HashChainVerify(benchmark::State& state) {
  const HashChain chain(1, 128);
  const auto distance = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        HashChain::verify(chain.element(distance), distance, chain.anchor(), 0));
}
BENCHMARK(BM_HashChainVerify)->Arg(1)->Arg(32)->Arg(127);

void BM_RingOverlap(benchmark::State& state) {
  const KeyRing a(1, 250, 100000);
  const KeyRing b(2, 250, 100000);
  for (auto _ : state) benchmark::DoNotOptimize(a.overlap(b));
}
BENCHMARK(BM_RingOverlap);

void BM_RingSample(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const KeyRing ring(++seed, 250, 100000);
    benchmark::DoNotOptimize(ring.size());
  }
}
BENCHMARK(BM_RingSample);

// contains() on both sides of KeyRing::kBitmapPoolLimit (1 << 20): the
// paper-scale pool (bitmap: one bit test) and a pool past the limit
// (binary search over the sorted ring). Half the probes hit, half miss,
// ids striding the pool so the branch predictor sees the hot-path mix.
void BM_RingContains(benchmark::State& state) {
  const auto pool = static_cast<std::uint32_t>(state.range(0));
  const KeyRing ring(1, 250, pool);
  const auto hits = ring.indices();
  std::uint32_t i = 0;
  for (auto _ : state) {
    const KeyIndex probe = (i & 1) != 0
                               ? hits[(i >> 1) % hits.size()]
                               : KeyIndex{(i * 2654435761u) % pool};
    benchmark::DoNotOptimize(ring.contains(probe));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingContains)
    ->Arg(100000)      // bitmap side (paper's evaluation pool)
    ->Arg(1 << 20)     // bitmap side, at the limit
    ->Arg(4 << 20);    // past the limit: binary-search fallback

void BM_EvaluatePredicate(benchmark::State& state) {
  AuditLog audit(8);
  audit.begin_aggregation(1);
  audit.set_level(NodeId{5}, 3);
  for (int i = 0; i < 8; ++i) {
    ForwardRecord f;
    f.msg.origin = NodeId{static_cast<std::uint32_t>(i)};
    f.msg.value = 100 + i;
    f.out_edge = KeyIndex{static_cast<std::uint32_t>(40 + i)};
    audit.add_forwarded(0, NodeId{5}, f);
  }
  Predicate p;
  p.kind = PredicateKind::kAggForwardedValue;
  p.v_max = 104;
  p.level = 3;
  p.id_lo = NodeId{0};
  p.id_hi = NodeId{100};
  p.z_lo = KeyIndex{0};
  p.z_hi = KeyIndex{60};
  for (auto _ : state)
    benchmark::DoNotOptimize(evaluate_predicate(p, NodeId{5}, audit));
}
BENCHMARK(BM_EvaluatePredicate);

// Multi-buffer MAC throughput by batch width. Frame-sized messages (48 B:
// a typical encoded veto/agg payload) under one cached key schedule, so
// the delta over BM_MacCachedSchedule is pure lane parallelism.
void BM_MacBatchLanes(benchmark::State& state) {
  const auto lanes = static_cast<std::size_t>(state.range(0));
  const MacContext ctx(derive_key("bench", 7, 8));
  const std::vector<Bytes> msgs(lanes, Bytes(48, 0x55));
  MacBatch batch;
  for (auto _ : state) {
    batch.clear();
    for (const auto& m : msgs) (void)batch.add(ctx, m);
    batch.compute();
    benchmark::DoNotOptimize(batch.macs().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lanes));
}
BENCHMARK(BM_MacBatchLanes)->Arg(1)->Arg(2)->Arg(8)->Arg(16)->Arg(64);

/// The lanes-vs-oneshot report: BENCH_micro_crypto.json gets ns/MAC for
/// the one-shot path, the cached-schedule path, and MacBatch at widening
/// lane counts, plus the headline batch-vs-oneshot speedup.
void write_mac_batch_report() {
  using clock = std::chrono::steady_clock;
  constexpr std::size_t kMsgLen = 48;
  const std::size_t macs_per_rep = bench::smoke() ? 256 : 4096;
  const std::size_t reps = bench::trials(16);
  const SymmetricKey key = derive_key("bench", 7, 8);
  const MacContext ctx(key);

  bench::BenchReport report("micro_crypto");
  report.config("message_bytes", static_cast<std::int64_t>(kMsgLen));
  report.config("macs_per_rep", static_cast<std::int64_t>(macs_per_rep));
  report.config("reps", static_cast<std::int64_t>(reps));
  const char* impl = "scalar";
  switch (MacBatch::active_impl()) {
    case MacBatch::Impl::kShaNiX2: impl = "sha-ni-x2"; break;
    case MacBatch::Impl::kAvx2X8: impl = "avx2-x8"; break;
    default: break;
  }
  report.config("mac_batch_impl", impl);

  // Best-of-reps ns/MAC for one timed body.
  const auto measure = [&](const auto& body) {
    double best_ms = 1e300;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const auto t0 = clock::now();
      body();
      const auto t1 = clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      if (ms < best_ms) best_ms = ms;
    }
    return best_ms * 1e6 / static_cast<double>(macs_per_rep);
  };

  const Bytes msg(kMsgLen, 0x55);
  const double oneshot_ns = measure([&] {
    for (std::size_t i = 0; i < macs_per_rep; ++i)
      benchmark::DoNotOptimize(compute_mac(key, msg));
  });
  report.group("mac_oneshot").metric("ns_per_mac", oneshot_ns);
  const double cached_ns = measure([&] {
    for (std::size_t i = 0; i < macs_per_rep; ++i)
      benchmark::DoNotOptimize(ctx.compute(msg));
  });
  report.group("mac_cached_schedule").metric("ns_per_mac", cached_ns);

  double widest_batch_ns = cached_ns;
  for (const std::size_t lanes : {std::size_t{2}, std::size_t{8},
                                  std::size_t{16}, std::size_t{64}}) {
    const std::vector<Bytes> msgs(lanes, msg);
    MacBatch batch;
    const double ns = measure([&] {
      for (std::size_t done = 0; done < macs_per_rep; done += lanes) {
        batch.clear();
        for (const auto& m : msgs) (void)batch.add(ctx, m);
        batch.compute();
        benchmark::DoNotOptimize(batch.macs().data());
      }
    });
    report.group("mac_batch_lanes=" + std::to_string(lanes))
        .metric("ns_per_mac", ns);
    widest_batch_ns = ns;
  }
  report.result("batch_speedup_vs_oneshot", oneshot_ns / widest_batch_ns);
  report.result("batch_speedup_vs_cached", cached_ns / widest_batch_ns);

  // Ring-membership rows: contains() cost on both sides of
  // KeyRing::kBitmapPoolLimit, so the bitmap-vs-binary-search tradeoff the
  // limit encodes stays a measured number (see key_ring.h).
  for (const std::uint32_t pool : {100000u, 1u << 20, 4u << 20}) {
    const KeyRing ring(1, 250, pool);
    const auto hits = ring.indices();
    std::uint32_t i = 0;
    const double ns = measure([&] {
      for (std::size_t probe_i = 0; probe_i < macs_per_rep; ++probe_i) {
        const KeyIndex probe = (i & 1) != 0
                                   ? hits[(i >> 1) % hits.size()]
                                   : KeyIndex{(i * 2654435761u) % pool};
        benchmark::DoNotOptimize(ring.contains(probe));
        ++i;
      }
    });
    report.group("ring_contains_pool=" + std::to_string(pool))
        .metric("ns_per_lookup", ns);
  }
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  write_mac_batch_report();
  benchmark::Shutdown();
  return 0;
}
