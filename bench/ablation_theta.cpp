// TXT-THETA — Section I / VI-C: "we show that this can often reduce the
// number of keys that need to be individually revoked by over 90%".
//
// Two views:
//  * analytic (paper parameters u=100,000, r=250): θ*(f) = the smallest
//    threshold with ~zero mis-revocation (from the Figure 7 simulation);
//    the saving is 1 - θ*/r, since a malicious sensor is fully revoked
//    after θ* individually pinpointed keys instead of all r.
//  * campaign (protocol-in-the-loop): a junk-injecting attacker is run to
//    exhaustion with and without threshold revocation; we count the keys
//    that needed an individual pinpointing walk.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "attack/strategies.h"
#include "core/coordinator.h"
#include "trial_runner.h"
#include "util/random.h"
#include "util/stats.h"

namespace {

constexpr std::uint32_t kPool = 100000;
constexpr std::uint32_t kRing = 250;

/// Smallest θ with zero mis-revoked honest sensors across trials
/// (paper parameters; same computation as the Figure 7 bench). Trials run
/// on the parallel engine; the reduction (max over per-trial worst
/// overlaps) is order-independent.
std::uint32_t theta_star(std::uint32_t n, std::uint32_t f,
                         std::size_t n_trials, std::uint64_t seed,
                         vmat::bench::TrialGroup& group) {
  std::vector<std::uint32_t> per_trial_worst(n_trials, 0);

  vmat::bench::timed_trials(
      group, n_trials, seed, [&](std::size_t trial, vmat::Rng& rng) {
        std::vector<std::uint32_t> stamps(kPool, 0);
        std::vector<std::uint8_t> adversary(kPool, 0);
        std::vector<std::uint32_t> ring;
        std::uint32_t mark = 0;
        std::uint32_t worst = 0;

        auto draw = [&](std::uint32_t m) {
          ring.clear();
          while (ring.size() < kRing) {
            const auto k = static_cast<std::uint32_t>(rng.below(kPool));
            if (stamps[k] == m) continue;
            stamps[k] = m;
            ring.push_back(k);
          }
        };

        for (std::uint32_t m = 0; m < f; ++m) {
          draw(++mark);
          for (auto k : ring) adversary[k] = 1;
        }
        for (std::uint32_t h = f; h < n; ++h) {
          draw(++mark);
          std::uint32_t overlap = 0;
          for (auto k : ring) overlap += adversary[k];
          worst = std::max(worst, overlap);
        }
        per_trial_worst[trial] = worst;
      });

  return *std::max_element(per_trial_worst.begin(), per_trial_worst.end()) + 1;
}

struct CampaignCost {
  std::size_t pinpointed;
  std::size_t executions;
  bool attacker_dead;
};

CampaignCost run_campaign(std::uint32_t theta, std::uint64_t seed) {
  const auto topo = vmat::Topology::random_geometric(40, 0.4, seed);
  vmat::NodeId attacker{1};
  for (std::uint32_t id = 2; id < topo.node_count(); ++id)
    if (topo.degree(vmat::NodeId{id}) > topo.degree(attacker))
      attacker = vmat::NodeId{id};

  vmat::NetworkSpec netcfg;
  netcfg.keys.pool_size = 800;
  netcfg.keys.ring_size = 40;
  netcfg.keys.seed = seed;
  netcfg.revocation_threshold = theta;
  vmat::Network net(topo, netcfg);
  vmat::Adversary adv(&net, {attacker},
                      std::make_unique<vmat::JunkInjectStrategy>(
                          vmat::LiePolicy::kDenyAll, /*frame=*/false));
  vmat::CoordinatorSpec cfg;
  cfg.depth_bound =
      topo.depth(std::unordered_set<vmat::NodeId>{attacker}) + 2;
  cfg.seed = seed;
  vmat::VmatCoordinator coordinator(&net, &adv, cfg);

  std::vector<std::vector<vmat::Reading>> values(net.node_count());
  std::vector<std::vector<std::int64_t>> weights(net.node_count());
  for (std::uint32_t id = 0; id < net.node_count(); ++id) {
    values[id] = {100 + static_cast<vmat::Reading>(id)};
    weights[id] = {0};
  }
  // Serve the retry loop over the current epoch instead of re-forming a
  // tree per execution (run_until_result's execute() path): revocations
  // invalidate the epoch — the protocol's actual re-formation rule — and
  // everything else reuses the formed tree.
  std::size_t executions = 0;
  for (; executions < 500; ) {
    if (!coordinator.epoch_ready()) (void)coordinator.prepare_epoch();
    const auto outcome = coordinator.run_query(values, weights);
    ++executions;
    if (outcome.produced_result()) break;
  }
  return {net.revocation().pinpointed_key_count(), executions,
          net.revocation().is_sensor_revoked(attacker)};
}

}  // namespace

int main() {
  const std::size_t n_trials = vmat::bench::trials(30);
  std::printf(
      "TXT-THETA | threshold revocation: individually pinpointed keys "
      "saved by announcing the ring seed at theta\n\n");

  vmat::bench::BenchReport report("ablation_theta");
  report.config("pool", static_cast<std::int64_t>(kPool));
  report.config("ring", static_cast<std::int64_t>(kRing));
  report.config("trials", static_cast<std::int64_t>(n_trials));

  {
    vmat::TablePrinter table({"f", "theta* (zero mis-revocation)",
                              "keys saved per malicious ring",
                              "saving vs r=250"});
    for (const std::uint32_t f : {1u, 5u, 10u, 20u}) {
      auto& group = report.group("theta_star f=" + std::to_string(f));
      const auto t = theta_star(1000, f, n_trials, 0xabc0 + f, group);
      group.metric("theta_star", t);
      table.add_row(
          {std::to_string(f), std::to_string(t),
           std::to_string(kRing - t),
           vmat::TablePrinter::fmt(100.0 * (kRing - t) / kRing, 1) + "%"});
    }
    std::printf("analytic view (u=%u, r=%u, n=1000, %zu trials):\n", kPool,
                kRing, n_trials);
    table.print();
    std::printf("\n");
  }

  {
    // Campaigns are independent protocol-in-the-loop runs — fan the four
    // theta configurations out over the trial engine (the campaign itself
    // is deterministic from its fixed seed; the engine rng is unused).
    const std::uint32_t thetas[] = {0u, 6u, 10u, 16u};
    std::vector<CampaignCost> costs(std::size(thetas));
    auto& group = report.group("campaign");
    vmat::bench::timed_trials(group, std::size(thetas), 0,
                              [&](std::size_t i, vmat::Rng&) {
                                costs[i] = run_campaign(thetas[i], 3);
                              });
    vmat::TablePrinter table({"theta", "executions to kill attacker",
                              "individually pinpointed keys",
                              "attacker fully revoked"});
    for (std::size_t i = 0; i < std::size(thetas); ++i) {
      const auto& c = costs[i];
      table.add_row({thetas[i] == 0 ? "off" : std::to_string(thetas[i]),
                     std::to_string(c.executions),
                     std::to_string(c.pinpointed),
                     c.attacker_dead ? "yes" : "no (keys exhausted instead)"});
    }
    std::printf(
        "campaign view (junk-injecting attacker, sparse rings r=40/u=800, "
        "ring overlap ~2):\n");
    table.print();
  }
  report.write();

  std::printf(
      "\nShape checks vs paper: theta* stays around 7..30 — an order of "
      "magnitude below r=250 — so over 90%%\nof a malicious ring never needs "
      "an individual pinpointing walk; in-protocol, threshold revocation\n"
      "kills the attacker after ~theta executions instead of one per "
      "exposed key.\n");
  return 0;
}
