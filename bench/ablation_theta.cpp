// TXT-THETA — Section I / VI-C: "we show that this can often reduce the
// number of keys that need to be individually revoked by over 90%".
//
// Two views:
//  * analytic (paper parameters u=100,000, r=250): θ*(f) = the smallest
//    threshold with ~zero mis-revocation (from the Figure 7 simulation);
//    the saving is 1 - θ*/r, since a malicious sensor is fully revoked
//    after θ* individually pinpointed keys instead of all r.
//  * campaign (protocol-in-the-loop): a junk-injecting attacker is run to
//    exhaustion with and without threshold revocation; we count the keys
//    that needed an individual pinpointing walk.
#include <cstdio>
#include <memory>

#include "attack/strategies.h"
#include "core/coordinator.h"
#include "util/random.h"
#include "util/stats.h"

namespace {

constexpr std::uint32_t kPool = 100000;
constexpr std::uint32_t kRing = 250;

/// Smallest θ with zero mis-revoked honest sensors across trials
/// (paper parameters; same computation as the Figure 7 bench).
std::uint32_t theta_star(std::uint32_t n, std::uint32_t f, int trials,
                         std::uint64_t seed) {
  vmat::Rng rng(seed);
  std::vector<std::uint32_t> stamps(kPool, 0);
  std::vector<std::uint8_t> adversary(kPool, 0);
  std::vector<std::uint32_t> ring;
  std::uint32_t mark = 0;
  std::uint32_t worst_overlap = 0;

  auto draw = [&](std::uint32_t m) {
    ring.clear();
    while (ring.size() < kRing) {
      const auto k = static_cast<std::uint32_t>(rng.below(kPool));
      if (stamps[k] == m) continue;
      stamps[k] = m;
      ring.push_back(k);
    }
  };

  for (int t = 0; t < trials; ++t) {
    std::fill(adversary.begin(), adversary.end(), 0);
    for (std::uint32_t m = 0; m < f; ++m) {
      draw(++mark);
      for (auto k : ring) adversary[k] = 1;
    }
    for (std::uint32_t h = f; h < n; ++h) {
      draw(++mark);
      std::uint32_t overlap = 0;
      for (auto k : ring) overlap += adversary[k];
      worst_overlap = std::max(worst_overlap, overlap);
    }
  }
  return worst_overlap + 1;
}

struct CampaignCost {
  std::size_t pinpointed;
  std::size_t executions;
  bool attacker_dead;
};

CampaignCost run_campaign(std::uint32_t theta, std::uint64_t seed) {
  const auto topo = vmat::Topology::random_geometric(40, 0.4, seed);
  vmat::NodeId attacker{1};
  for (std::uint32_t id = 2; id < topo.node_count(); ++id)
    if (topo.degree(vmat::NodeId{id}) > topo.degree(attacker))
      attacker = vmat::NodeId{id};

  vmat::NetworkConfig netcfg;
  netcfg.keys.pool_size = 800;
  netcfg.keys.ring_size = 40;
  netcfg.keys.seed = seed;
  netcfg.revocation_threshold = theta;
  vmat::Network net(topo, netcfg);
  vmat::Adversary adv(&net, {attacker},
                      std::make_unique<vmat::JunkInjectStrategy>(
                          vmat::LiePolicy::kDenyAll, /*frame=*/false));
  vmat::VmatConfig cfg;
  cfg.depth_bound =
      topo.depth(std::unordered_set<vmat::NodeId>{attacker}) + 2;
  cfg.seed = seed;
  vmat::VmatCoordinator coordinator(&net, &adv, cfg);

  std::vector<std::vector<vmat::Reading>> values(net.node_count());
  std::vector<std::vector<std::int64_t>> weights(net.node_count());
  for (std::uint32_t id = 0; id < net.node_count(); ++id) {
    values[id] = {100 + static_cast<vmat::Reading>(id)};
    weights[id] = {0};
  }
  const auto history = coordinator.run_until_result(values, weights, {}, 500);
  return {net.revocation().pinpointed_key_count(), history.size(),
          net.revocation().is_sensor_revoked(attacker)};
}

}  // namespace

int main() {
  std::printf(
      "TXT-THETA | threshold revocation: individually pinpointed keys "
      "saved by announcing the ring seed at theta\n\n");

  {
    vmat::TablePrinter table({"f", "theta* (zero mis-revocation)",
                              "keys saved per malicious ring",
                              "saving vs r=250"});
    for (const std::uint32_t f : {1u, 5u, 10u, 20u}) {
      const auto t = theta_star(1000, f, /*trials=*/30, 0xabc0 + f);
      table.add_row(
          {std::to_string(f), std::to_string(t),
           std::to_string(kRing - t),
           vmat::TablePrinter::fmt(100.0 * (kRing - t) / kRing, 1) + "%"});
    }
    std::printf("analytic view (u=%u, r=%u, n=1000, 30 trials):\n", kPool,
                kRing);
    table.print();
    std::printf("\n");
  }

  {
    vmat::TablePrinter table({"theta", "executions to kill attacker",
                              "individually pinpointed keys",
                              "attacker fully revoked"});
    for (const std::uint32_t theta : {0u, 6u, 10u, 16u}) {
      const auto c = run_campaign(theta, 3);
      table.add_row({theta == 0 ? "off" : std::to_string(theta),
                     std::to_string(c.executions),
                     std::to_string(c.pinpointed),
                     c.attacker_dead ? "yes" : "no (keys exhausted instead)"});
    }
    std::printf(
        "campaign view (junk-injecting attacker, sparse rings r=40/u=800, "
        "ring overlap ~2):\n");
    table.print();
  }

  std::printf(
      "\nShape checks vs paper: theta* stays around 7..30 — an order of "
      "magnitude below r=250 — so over 90%%\nof a malicious ring never needs "
      "an individual pinpointing walk; in-protocol, threshold revocation\n"
      "kills the attacker after ~theta executions instead of one per "
      "exposed key.\n");
  return 0;
}
