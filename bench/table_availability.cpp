// TBL-AVAIL — the paper's core qualitative comparison (Section I), made
// quantitative: availability of each scheme under a persistent attacker.
//
// For each scheme we run up to 40 query attempts against the same
// compromised network and count how many produce a usable answer, whether
// the answer can be silently wrong, and whether the attacker loses
// anything:
//
//   TAG         insecure: always "answers", silently wrong under attack.
//   SECOA-style detect-inflation only: drops pass silently.
//   SHIA-style  detect-everything, revoke-nothing: alarms forever.
//   sampling    tolerant but Ω(log n) rounds per query.
//   VMAT        disrupted at first, then the adversary runs out of keys.
#include <cstdio>
#include <memory>

#include "baseline/sampling.h"
#include "util/random.h"
#include "baseline/secoa.h"
#include "baseline/shia.h"
#include "baseline/tag.h"
#include "attack/strategies.h"
#include "core/coordinator.h"
#include "util/stats.h"

namespace {

constexpr int kAttempts = 40;

vmat::NetworkSpec bench_keys() {
  vmat::NetworkSpec cfg;
  // The paper's sparse regime scaled down: mean pairwise ring overlap
  // r²/u = 1, θ an order of magnitude above it (no honest mis-revocation),
  // path keys covering the unkeyed physical edges.
  cfg.keys.pool_size = 3600;
  cfg.keys.ring_size = 60;
  cfg.keys.seed = 5;
  cfg.revocation_threshold = 10;
  return cfg;
}

}  // namespace

int main() {
  std::printf(
      "TBL-AVAIL | answered queries out of %d attempts against a persistent "
      "dropper/choker (grid 5x5, f=2)\n\n",
      kAttempts);

  const auto topo = vmat::Topology::grid(5, 5);
  const auto malicious = vmat::choose_malicious(topo, 2, 3);
  std::vector<vmat::Reading> readings(25);
  std::vector<std::int64_t> sums(25, 1);
  sums[0] = 0;
  for (std::uint32_t id = 0; id < 25; ++id)
    readings[id] = 100 + static_cast<vmat::Reading>(id);
  // Correctness oracles over the honest population (malicious sensors may
  // legally hide their own readings).
  vmat::Reading honest_min = vmat::kInfinity;
  std::int64_t honest_max = 0;
  for (std::uint32_t id = 1; id < 25; ++id) {
    if (malicious.contains(vmat::NodeId{id})) continue;
    honest_min = std::min(honest_min, readings[id]);
    honest_max = std::max<std::int64_t>(honest_max, readings[id]);
  }

  vmat::TablePrinter table({"scheme", "answered", "silently wrong",
                            "adversary keys lost", "rounds/query"});

  {  // TAG
    vmat::Network net(topo, bench_keys());
    int answered = 0, wrong = 0;
    for (int i = 0; i < kAttempts; ++i) {
      const auto r = vmat::run_tag_min(net, readings, malicious,
                                       vmat::TagAttack::kDeflate, 8);
      if (r.minimum.has_value()) {
        ++answered;
        if (*r.minimum != honest_min) ++wrong;
      }
    }
    table.add_row({"TAG (insecure)", std::to_string(answered),
                   std::to_string(wrong), "0", "2"});
  }

  {  // SECOA-style
    vmat::Network net(topo, bench_keys());
    int answered = 0, wrong = 0;
    for (int i = 0; i < kAttempts; ++i) {
      const auto r =
          vmat::run_secoa_max(net, readings, malicious, vmat::SecoaAttack::kDrop,
                              {.max_value = 256, .seed = 2});
      if (r.maximum.has_value()) {
        ++answered;
        if (*r.maximum != honest_max) ++wrong;
      }
    }
    table.add_row({"SECOA-style (anti-inflation)", std::to_string(answered),
                   std::to_string(wrong), "0", "2"});
  }

  {  // SHIA-style
    vmat::Network net(topo, bench_keys());
    int answered = 0;
    std::uint64_t state = 7;
    for (int i = 0; i < kAttempts; ++i) {
      const auto r = vmat::run_shia_sum(net, sums, malicious,
                                        vmat::ShiaAttack::kDropChildren,
                                        vmat::splitmix64(state));
      if (!r.alarmed) ++answered;
    }
    table.add_row({"SHIA-style (alarm-only)", std::to_string(answered), "0",
                   "0", "4"});
  }

  {  // set sampling
    std::vector<std::uint8_t> predicate(25, 1);
    predicate[0] = 0;
    const auto r = vmat::run_set_sampling_count(predicate, {.seed = 9});
    table.add_row({"set sampling [29] (tolerant)", std::to_string(kAttempts),
                   "0", "0", std::to_string(r.flooding_rounds)});
  }

  {  // VMAT
    vmat::Network net(topo, bench_keys());
    (void)net.establish_path_keys();
    vmat::Adversary adv(&net, malicious,
                        std::make_unique<vmat::ChokeVetoStrategy>(
                            vmat::LiePolicy::kDenyAll));
    vmat::CoordinatorSpec cfg;
    cfg.depth_bound = topo.depth(malicious);
    vmat::VmatCoordinator coordinator(&net, &adv, cfg);
    int answered = 0, wrong = 0;
    for (int i = 0; i < kAttempts; ++i) {
      const auto out = coordinator.run_min(readings);
      if (out.produced_result()) {
        ++answered;
        if (out.minima[0] != honest_min) ++wrong;
      }
    }
    table.add_row({"VMAT", std::to_string(answered), std::to_string(wrong),
                   std::to_string(net.revocation().revoked_key_count()),
                   "6 (+pinpointing when attacked)"});
  }

  table.print();
  std::printf(
      "\nShape checks vs paper: TAG answers wrongly; SECOA-style misses "
      "drops; SHIA-style never answers under a\npersistent attacker; "
      "sampling answers but pays log-n rounds; VMAT converts every "
      "disruption into revoked\nadversary keys and ends up answering "
      "correctly.\n");
  return 0;
}
