// ABL-TREE — ablation for Section IV-A / Figure 2(c): hop-count trees
// versus VMAT's timestamp trees under the wormhole/forged-hop attack.
//
// The wormhole adversary relays the tree-formation frame with a forged hop
// count in slot 1. In hop-count mode every honest sensor that levels
// through the poisoned frames ends with a level > L and cannot participate
// in aggregation; in timestamp mode the same frames merely assign
// (valid) early levels. We report the fraction of honest sensors left
// without a valid level.
//
// Not eligible for snapshot-fork / epoch reuse: tree formation itself is
// the measurand — reusing a formed tree would measure nothing.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "attack/strategies.h"
#include "core/tree_formation.h"
#include "trial_runner.h"
#include "util/stats.h"

namespace {

vmat::NetworkSpec bench_keys(std::uint64_t seed) {
  vmat::NetworkSpec cfg;
  cfg.keys.pool_size = 400;
  cfg.keys.ring_size = 120;
  cfg.keys.seed = seed;
  return cfg;
}

double invalid_fraction(vmat::TreeMode mode, const vmat::Topology& topo,
                        const std::unordered_set<vmat::NodeId>& malicious,
                        std::int32_t forged_hops, std::uint64_t seed) {
  vmat::Network net(topo, bench_keys(seed));
  vmat::Adversary adv(&net, malicious,
                      std::make_unique<vmat::WormholeStrategy>(forged_hops));
  vmat::TreePhaseParams params;
  params.mode = mode;
  params.depth_bound = topo.depth();
  params.session = seed;
  const auto tree = run_tree_formation(net, &adv, params);
  std::uint32_t honest = 0, invalid = 0;
  for (std::uint32_t id = 1; id < topo.node_count(); ++id) {
    if (malicious.contains(vmat::NodeId{id})) continue;
    ++honest;
    if (!tree.has_valid_level(vmat::NodeId{id})) ++invalid;
  }
  return honest == 0 ? 0.0 : static_cast<double>(invalid) / honest;
}

}  // namespace

int main() {
  std::printf(
      "ABL-TREE | Section IV-A: fraction of honest sensors with NO valid "
      "level under the wormhole attack\n(hop-count baseline vs VMAT "
      "timestamp levels)\n\n");

  vmat::TablePrinter table({"topology", "f", "forged hops",
                            "hop-count: invalid frac",
                            "timestamp: invalid frac"});

  struct Case {
    const char* name;
    vmat::Topology topo;
  };
  const Case cases[] = {
      {"line n=32", vmat::Topology::line(32)},
      {"grid 8x8", vmat::Topology::grid(8, 8)},
      {"geometric n=100", vmat::Topology::random_geometric(100, 0.2, 5)},
  };

  // Flatten the (topology, f, hops) grid and fan the independent rows out
  // over the trial engine; each row is deterministic from its parameters.
  struct RowSpec {
    const Case* c;
    std::uint32_t f;
    std::int32_t hops;
  };
  std::vector<RowSpec> rows;
  for (const auto& c : cases)
    for (const std::uint32_t f : {1u, 3u})
      for (const std::int32_t hops : {10, 100}) rows.push_back({&c, f, hops});

  vmat::bench::BenchReport report("ablation_tree_formation");
  report.config("rows", static_cast<std::int64_t>(rows.size()));
  auto& group = report.group("rows");
  std::vector<std::pair<double, double>> fracs(rows.size());
  vmat::bench::timed_trials(
      group, rows.size(), 0, [&](std::size_t i, vmat::Rng&) {
        const RowSpec& r = rows[i];
        // The wormhole measurement does not need the honest subgraph to
        // stay connected (no vetoes flow here), so malicious nodes are
        // simply spread across the id range.
        std::unordered_set<vmat::NodeId> malicious;
        for (std::uint32_t j = 1; j <= r.f; ++j)
          malicious.insert(
              vmat::NodeId{j * r.c->topo.node_count() / (r.f + 1)});
        fracs[i] = {invalid_fraction(vmat::TreeMode::kHopCount, r.c->topo,
                                     malicious, r.hops, 3),
                    invalid_fraction(vmat::TreeMode::kTimestamp, r.c->topo,
                                     malicious, r.hops, 3)};
      });

  for (std::size_t i = 0; i < rows.size(); ++i) {
    table.add_row({rows[i].c->name, std::to_string(rows[i].f),
                   std::to_string(rows[i].hops),
                   vmat::TablePrinter::fmt(fracs[i].first, 3),
                   vmat::TablePrinter::fmt(fracs[i].second, 3)});
  }
  table.print();
  report.write();

  std::printf(
      "\nShape checks vs paper: hop-count trees lose a large fraction of "
      "honest sensors to poisoned levels;\ntimestamp trees never lose any "
      "(right column identically 0).\n");
  return 0;
}
