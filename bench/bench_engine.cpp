// ENGINE — serving-layer bench: 64 COUNT queries at n=400, epoch-batched
// through vmat::Engine versus 64 sequential QueryEngine::count_until_answered
// calls (each of which pays a full announcement + tree formation).
//
// Reports, per repeat: wall-clock for both paths, fabric bytes for both
// paths, and the speedup / byte ratio. Also replays the batch through
// explicit ThreadPool(1) / ThreadPool(4) / ThreadPool(hw) engines and
// asserts the 64 estimates are bit-identical — the engine's determinism
// contract, checked on every bench run.
//
// Timing discipline: repeats run strictly serially on a dedicated
// ThreadPool(1) trial pool; the engine under test gets its own pool so the
// measured grid builds still parallelize. The table reports the minimum
// over repeats (noise-robust for wall-clock).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/query.h"
#include "engine/engine.h"
#include "sim/network.h"
#include "trial_runner.h"
#include "util/stats.h"

namespace {

vmat::NetworkSpec bench_keys(std::uint64_t seed) {
  vmat::NetworkSpec cfg;
  cfg.keys.pool_size = 1000;
  cfg.keys.ring_size = 180;
  cfg.keys.seed = seed;
  return cfg;
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// The 64 COUNT predicates: query q asks how many sensors have id % 64 >= q
/// — population sizes sweep n-1 down to ~n/64 so the batch is not one
/// predicate repeated.
std::vector<std::vector<std::uint8_t>> make_predicates(std::uint32_t n,
                                                       std::size_t queries) {
  std::vector<std::vector<std::uint8_t>> predicates(queries);
  for (std::size_t q = 0; q < queries; ++q) {
    predicates[q].assign(n, 0);
    for (std::uint32_t id = 1; id < n; ++id)
      predicates[q][id] = id % queries >= q ? 1 : 0;
  }
  return predicates;
}

}  // namespace

int main() {
  const bool smoke = vmat::bench::smoke();
  const std::size_t repeats = vmat::bench::trials(3);
  const std::uint32_t n = smoke ? 100 : 400;
  const std::size_t queries = smoke ? 8 : 64;
  // Lean estimator point (epsilon ~ 1/sqrt(10) ~ 0.32, the repo's usual
  // test tolerance): at higher instance counts the per-instance payload
  // work — identical in both paths — swamps the formation amortization the
  // bench is measuring.
  const std::uint32_t instances = 10;

  std::printf(
      "ENGINE | %zu-query COUNT batch at n=%u: epoch-batched serving vs "
      "sequential executions (min over %zu repeats)\n\n",
      queries, n, repeats);

  vmat::bench::BenchReport report("engine");
  report.config("n", static_cast<std::int64_t>(n));
  report.config("queries", static_cast<std::int64_t>(queries));
  report.config("instances", static_cast<std::int64_t>(instances));
  report.config("repeats", static_cast<std::int64_t>(repeats));

  const double radius = 1.8 / std::sqrt(static_cast<double>(n));
  const auto topo = vmat::Topology::random_geometric(n, radius, 7);
  const auto predicates = make_predicates(n, queries);

  vmat::CoordinatorSpec cfg;
  cfg.instances = instances;

  auto make_batch = [&] {
    std::vector<vmat::EngineQuery> batch(queries);
    for (std::size_t q = 0; q < queries; ++q) {
      batch[q].kind = vmat::EngineQueryKind::kCount;
      batch[q].predicate = predicates[q];
    }
    return batch;
  };
  vmat::EngineConfig engine_cfg;
  engine_cfg.max_in_flight = static_cast<std::uint32_t>(queries);
  engine_cfg.max_instances_per_execution =
      static_cast<std::uint32_t>(queries) * instances;

  // Repeats measure the same deterministic work; run them serially.
  vmat::ThreadPool serial(1);

  // --- sequential baseline: one execution (announcement + tree formation
  // + query phases) per query ---
  std::vector<double> seq_ms(repeats, 0.0);
  std::uint64_t seq_bytes = 0;
  std::vector<double> seq_estimates;
  auto& seq_group = report.group("sequential");
  vmat::bench::timed_trials(
      seq_group, repeats, 0,
      [&](std::size_t t, vmat::Rng&) {
        vmat::Network net(topo, bench_keys(n));
        vmat::VmatCoordinator coordinator(&net, nullptr, cfg);
        vmat::QueryEngine engine(&coordinator);
        std::uint64_t bytes = 0;
        std::vector<double> estimates;
        estimates.reserve(queries);
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t q = 0; q < queries; ++q) {
          const auto out = engine.count_until_answered(predicates[q]);
          bytes += out.exec.fabric_bytes;
          estimates.push_back(out.estimate.value_or(-1.0));
        }
        seq_ms[t] = ms_since(start);
        seq_bytes = bytes;
        seq_estimates = std::move(estimates);
      },
      &serial);
  const double seq_best = vmat::percentile_nearest_rank(seq_ms, 0);
  seq_group.metric("wall_ms_min", seq_best);
  seq_group.metric("fabric_kb", seq_bytes / vmat::kBytesPerKb);

  // --- epoch-batched serving: one epoch, one wide execution ---
  std::vector<double> batch_ms(repeats, 0.0);
  std::uint64_t batch_bytes = 0;
  std::uint64_t epochs_formed = 0;
  std::uint64_t executions = 0;
  std::vector<double> batch_estimates;
  vmat::ThreadPool engine_pool;  // parallel grid builds are part of the SUT
  auto& batch_group = report.group("epoch-batched");
  vmat::bench::timed_trials(
      batch_group, repeats, 0,
      [&](std::size_t t, vmat::Rng&) {
        vmat::Network net(topo, bench_keys(n));
        vmat::VmatCoordinator coordinator(&net, nullptr, cfg);
        vmat::Engine engine(&coordinator, engine_cfg, &engine_pool);
        const auto start = std::chrono::steady_clock::now();
        const auto results = engine.run_batch(make_batch());
        batch_ms[t] = ms_since(start);
        batch_bytes = engine.stats().fabric_bytes;
        epochs_formed = engine.stats().epochs_formed;
        executions = engine.stats().executions;
        std::vector<double> estimates;
        estimates.reserve(results.size());
        for (const auto& r : results)
          estimates.push_back(r.estimate.value_or(-1.0));
        batch_estimates = std::move(estimates);
      },
      &serial);
  const double batch_best = vmat::percentile_nearest_rank(batch_ms, 0);
  batch_group.metric("wall_ms_min", batch_best);
  batch_group.metric("fabric_kb", batch_bytes / vmat::kBytesPerKb);
  batch_group.metric("epochs", static_cast<double>(epochs_formed));
  batch_group.metric("executions", static_cast<double>(executions));

  // --- determinism: replay through explicit pool widths, compare bits ---
  bool identical = true;
  std::vector<double> reference;
  const std::size_t widths[] = {1, 4, vmat::default_thread_count()};
  for (const std::size_t threads : widths) {
    vmat::ThreadPool pool(threads);
    vmat::Network net(topo, bench_keys(n));
    vmat::VmatCoordinator coordinator(&net, nullptr, cfg);
    vmat::Engine engine(&coordinator, engine_cfg, &pool);
    const auto results = engine.run_batch(make_batch());
    std::vector<double> estimates;
    estimates.reserve(results.size());
    for (const auto& r : results)
      estimates.push_back(r.estimate.value_or(-1.0));
    if (reference.empty())
      reference = std::move(estimates);
    else
      identical = identical && estimates == reference;
  }
  // The batch must also answer exactly what the sequential path answers
  // per-query up to estimator variance; both must at least have answered.
  bool all_answered = batch_estimates.size() == queries;
  for (double e : batch_estimates) all_answered = all_answered && e >= 0.0;
  for (double e : seq_estimates) all_answered = all_answered && e >= 0.0;

  const double speedup = batch_best > 0.0 ? seq_best / batch_best : 0.0;
  const double byte_ratio =
      batch_bytes > 0 ? static_cast<double>(seq_bytes) /
                            static_cast<double>(batch_bytes)
                      : 0.0;
  report.result("speedup_wall", speedup);
  report.result("byte_ratio", byte_ratio);
  report.result("bit_identical", identical ? 1.0 : 0.0);
  report.result("all_answered", all_answered ? 1.0 : 0.0);

  vmat::TablePrinter table({"path", "wall ms (min)", "fabric KB", "epochs",
                            "executions"});
  table.add_row({"sequential", vmat::TablePrinter::fmt(seq_best, 1),
                 vmat::TablePrinter::fmt(seq_bytes / vmat::kBytesPerKb, 1),
                 std::to_string(queries), std::to_string(queries)});
  table.add_row({"epoch-batched", vmat::TablePrinter::fmt(batch_best, 1),
                 vmat::TablePrinter::fmt(batch_bytes / vmat::kBytesPerKb, 1),
                 std::to_string(epochs_formed), std::to_string(executions)});
  table.print();
  std::printf(
      "\nspeedup %.2fx | bytes %.2fx fewer | bit-identical across "
      "VMAT_THREADS {1,4,%zu}: %s\n",
      speedup, byte_ratio, vmat::default_thread_count(),
      identical ? "yes" : "NO");
  report.write();

  // The acceptance gate: >=3x wall-clock, strictly fewer bytes, identical
  // bits. Fail loudly (non-zero exit) so CI smoke catches regressions.
  if (!identical || !all_answered || batch_bytes >= seq_bytes) return 1;
  if (!smoke && speedup < 3.0) return 1;
  return 0;
}
