// SNAPSHOT — copy-on-write fork bench: a Monte-Carlo fan-out of clean MIN
// executions run twice, once from scratch (every trial builds its own
// deployment and pays announcement + tree formation) and once forked from
// one shared post-formation snapshot (every trial restores the captured
// prefix and runs only the query phases). Per-trial readings differ, so the
// trials are real work, not one execution repeated.
//
// The bench asserts the fork path is bit-identical to the scratch path —
// same outcome kind, same minima, same fabric bytes, same per-phase
// counters, trial by trial — and reports the fan-out speedup. With
// VMAT_SNAPSHOT=0 the fork group silently degrades to private per-trial
// snapshots (same bits, no sharing), which this bench also accepts.
//
// VMAT_BENCH_ACCEPT=1 runs the PR acceptance gate instead: at n=4000 the
// forked fan-out must complete >= 2x faster than the scratch fan-out,
// bit-identically. VMAT_TRACE_DIR=<dir> additionally records one attacked
// fork execution (silent-drop adversary, veto + pinpointing) and exports
// its trace for tools/check_trace.py.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "attack/strategies.h"
#include "core/coordinator.h"
#include "sim/fabric.h"
#include "sim/snapshot.h"
#include "trial_runner.h"
#include "util/stats.h"

namespace {

vmat::NetworkSpec bench_keys(std::uint64_t seed) {
  vmat::NetworkSpec cfg;
  cfg.keys.pool_size = 1000;
  cfg.keys.ring_size = 180;
  cfg.keys.seed = seed;
  return cfg;
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Deterministic per-trial readings: every trial is a distinct query.
std::vector<vmat::Reading> trial_readings(std::uint32_t n, std::size_t trial) {
  std::vector<vmat::Reading> readings(n, 500);
  for (std::uint32_t id = 1; id < n; ++id)
    readings[id] = 500 + static_cast<vmat::Reading>(
                             (id * 2654435761ULL + trial * 40503ULL) % 1000);
  return readings;
}

/// Everything an execution outcome decides, for trial-by-trial comparison.
struct TrialResult {
  vmat::OutcomeKind kind{vmat::OutcomeKind::kResult};
  std::vector<vmat::Reading> minima;
  std::uint64_t fabric_bytes{0};
  int data_rounds{0};
  vmat::ExecutionMetrics metrics;

  friend bool operator==(const TrialResult&, const TrialResult&) = default;
};

TrialResult capture(const vmat::ExecutionOutcome& out) {
  return {out.kind, out.minima, out.fabric_bytes, out.data_rounds, out.metrics};
}

/// One fan-out of `trials` clean MIN executions at size n, both ways.
/// Group references from BenchReport::group() are only stable until the
/// next group() call, so each group is created and fully filled in turn.
struct FanOut {
  double scratch_ms{0.0};
  double fork_ms{0.0};
  double scratch_trial_mean_ms{0.0};
  double fork_trial_mean_ms{0.0};
  bool identical{false};
};

FanOut run_fan_out(const vmat::Topology& topo, std::uint32_t n,
                   std::size_t trials, vmat::bench::BenchReport& report) {
  std::vector<TrialResult> scratch(trials);
  std::vector<TrialResult> forked(trials);
  FanOut fan;

  {
    auto& scratch_group = report.group("scratch");
    const auto start = std::chrono::steady_clock::now();
    vmat::bench::timed_trials(
        scratch_group, trials, 0, [&](std::size_t t, vmat::Rng&) {
          vmat::Network net(topo, bench_keys(n));
          vmat::VmatCoordinator coordinator(&net, nullptr,
                                            vmat::CoordinatorSpec{});
          scratch[t] = capture(coordinator.run_min(trial_readings(n, t)));
        });
    fan.scratch_ms = ms_since(start);
    fan.scratch_trial_mean_ms = vmat::mean(scratch_group.trial_ms);
    scratch_group.metric("fanout_wall_ms", fan.scratch_ms);
  }
  {
    auto& fork_group = report.group("fork");
    auto factory = [&topo, n]() {
      auto fork = std::make_unique<vmat::bench::ForkDeployment>();
      fork->net = std::make_unique<vmat::Network>(topo, bench_keys(n));
      fork->coordinator = std::make_unique<vmat::VmatCoordinator>(
          fork->net.get(), nullptr, vmat::CoordinatorSpec{});
      return fork;
    };
    const auto start = std::chrono::steady_clock::now();
    vmat::bench::forked_timed_trials(
        fork_group, trials, 0, factory,
        [&forked, n](std::size_t t, vmat::Rng&,
                     vmat::bench::ForkDeployment& fork,
                     const vmat::Snapshot& snapshot) {
          forked[t] = capture(
              fork.coordinator->resume_min(snapshot, trial_readings(n, t)));
        });
    fan.fork_ms = ms_since(start);
    fan.fork_trial_mean_ms = vmat::mean(fork_group.trial_ms);
    fork_group.metric("fanout_wall_ms", fan.fork_ms);
  }

  fan.identical = scratch == forked;
  return fan;
}

/// VMAT_BENCH_ACCEPT=1: the PR acceptance gate — forked fan-out >= 2x
/// faster than the scratch fan-out at n=4000, bit-identical results.
int run_acceptance_gate() {
  constexpr std::uint32_t n = 4000;
  const std::size_t trials = 16;
  std::printf(
      "SNAPSHOT acceptance gate | %zu-trial clean fan-out at n=%u, forked "
      "vs scratch\n",
      trials, n);
  const double radius = 1.8 / std::sqrt(static_cast<double>(n));
  const auto topo = vmat::Topology::random_geometric(n, radius, 7);

  vmat::bench::BenchReport report("snapshot_accept");
  const FanOut fan = run_fan_out(topo, n, trials, report);

  const double speedup = fan.fork_ms > 0.0 ? fan.scratch_ms / fan.fork_ms : 0.0;
  const bool fast_enough = speedup >= 2.0;
  std::printf("  scratch fan-out: %.1f ms\n  forked fan-out:  %.1f ms\n",
              fan.scratch_ms, fan.fork_ms);
  std::printf("  speedup %.2fx (need >= 2.00x)  %s\n", speedup,
              fast_enough ? "PASS" : "FAIL");
  std::printf("  bit-identical stats: %s\n", fan.identical ? "PASS" : "FAIL");
  std::printf("SNAPSHOT acceptance gate: %s\n",
              fast_enough && fan.identical ? "PASS" : "FAIL");
  return fast_enough && fan.identical ? 0 : 1;
}

/// VMAT_TRACE_DIR: record one attacked fork execution (veto + pinpointing
/// over a restored snapshot) and export its trace for check_trace.py.
void export_fork_trace(const char* dir) {
  const std::uint32_t n = 60;
  const double radius = 1.8 / std::sqrt(static_cast<double>(n));
  const auto topo = vmat::Topology::random_geometric(n, radius, 7);

  // Same malicious placement as bench_scale: a deep victim whose whole
  // parent cut drops silently, forcing a veto and a pinpointing walk.
  const auto depth = topo.bfs_depth();
  std::unordered_set<vmat::NodeId> malicious;
  std::uint32_t victim = 0;
  for (std::uint32_t candidate = n; candidate-- > 1;) {
    if (depth[candidate] < 2) continue;
    std::unordered_set<vmat::NodeId> cut;
    for (vmat::NodeId v : topo.neighbors(vmat::NodeId{candidate}))
      if (depth[v.value] == depth[candidate] - 1) cut.insert(v);
    if (!cut.empty() && topo.connected(cut)) {
      malicious = std::move(cut);
      victim = candidate;
      break;
    }
  }
  if (malicious.empty()) {
    std::printf("[trace] no attackable cut at n=%u; skipping export\n", n);
    return;
  }

  vmat::Network net(topo, bench_keys(n));
  vmat::Adversary adv(&net, malicious,
                      std::make_unique<vmat::SilentDropStrategy>(
                          vmat::LiePolicy::kDenyAll));
  vmat::CoordinatorSpec cfg;
  cfg.depth_bound = topo.depth(malicious);
  vmat::VmatCoordinator coordinator(&net, &adv, cfg);

  // Attach the recorder AFTER the capture: the restore replays the
  // buffered prefix into the sink, so the recording is one complete
  // execution stream (a recorder attached during capture would see the
  // prefix twice — once live, once replayed).
  const vmat::Snapshot snapshot = coordinator.snapshot_after_formation();
  vmat::FlightRecorder recorder;
  coordinator.set_recorder(&recorder);
  std::vector<vmat::Reading> readings(n, 500);
  readings[victim] = 1;
  const auto out = coordinator.resume_min(snapshot, readings);
  coordinator.set_recorder(nullptr);

  const std::string path = std::string(dir) + "/bench_snapshot_fork.json";
  if (!recorder.write_json(path)) {
    std::printf("[trace] FAILED to write %s\n", path.c_str());
    std::exit(1);
  }
  std::printf("[trace] wrote %s (outcome: %s)\n", path.c_str(),
              out.produced_result() ? "result" : "revocation");
}

}  // namespace

int main() {
  if (const char* env = std::getenv("VMAT_BENCH_ACCEPT");
      env != nullptr && *env != '\0' && std::string(env) != "0")
    return run_acceptance_gate();

  const bool smoke = vmat::bench::smoke();
  const std::uint32_t n = smoke ? 100 : 800;
  const std::size_t trials = vmat::bench::trials(32);
  std::printf(
      "SNAPSHOT | %zu-trial clean fan-out at n=%u: forked from one shared "
      "post-formation snapshot vs built from scratch\n\n",
      trials, n);

  vmat::bench::BenchReport report("snapshot");
  report.config("n", static_cast<std::int64_t>(n));
  report.config("trials", static_cast<std::int64_t>(trials));

  const double radius = 1.8 / std::sqrt(static_cast<double>(n));
  const auto topo = vmat::Topology::random_geometric(n, radius, 7);

  const FanOut fan = run_fan_out(topo, n, trials, report);

  const double speedup = fan.fork_ms > 0.0 ? fan.scratch_ms / fan.fork_ms : 0.0;
  report.result("speedup_fanout", speedup);
  report.result("bit_identical", fan.identical ? 1.0 : 0.0);

  vmat::TablePrinter table({"path", "fan-out wall ms", "per-trial mean ms"});
  table.add_row({"scratch", vmat::TablePrinter::fmt(fan.scratch_ms, 1),
                 vmat::TablePrinter::fmt(fan.scratch_trial_mean_ms, 2)});
  table.add_row({"fork", vmat::TablePrinter::fmt(fan.fork_ms, 1),
                 vmat::TablePrinter::fmt(fan.fork_trial_mean_ms, 2)});
  table.print();
  std::printf("\nspeedup %.2fx | trial-by-trial bit-identical: %s\n", speedup,
              fan.identical ? "yes" : "NO");
  report.write();

  if (const char* dir = std::getenv("VMAT_TRACE_DIR"))
    export_fork_trace(dir);

  // Identity is the contract; speed is reported here and gated under
  // VMAT_BENCH_ACCEPT (timing at smoke sizes is noise).
  return fan.identical ? 0 : 1;
}
