// MEMORY — large-n footprint bench: bytes of heap per sensor for one full
// clean execution, alongside wall time, at n up to 250k (1M behind
// VMAT_BENCH_FULL=1). This is the acceptance instrument for the large-n
// memory diet: the committed baseline records both the pre-diet and
// post-diet bytes/node at n=8000 so the >=5x reduction is checked against
// a number measured by this same binary.
//
// Accounting: the binary replaces global operator new/delete with
// malloc_usable_size-counting wrappers (live + high-water atomics). A
// cell's bytes/node is the peak live delta over [Network construction ..
// run_min returns] divided by n — that window covers key/MAC caches, the
// arena fabric high-water, phase state, and audit trails, but not the
// topology itself, which is reported separately (it is shared across
// executions in every multi-trial harness).
//
// Determinism: each cell's execution outcome is folded into a 64-bit
// digest and re-checked across VMAT execution thread counts {1, 4, hw}
// and with the streaming fabric mode forced on and off; any mismatch
// aborts the bench. Memory numbers are deterministic too (same allocation
// sequence), so perf_compare gates bytes_per_node at a tight tolerance.
#include <malloc.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "core/coordinator.h"
#include "sim/fabric.h"
#include "trial_runner.h"
#include "util/stats.h"

// --- malloc-counting global new/delete -------------------------------------

namespace membench {

std::atomic<std::uint64_t> g_live{0};
std::atomic<std::uint64_t> g_peak{0};

inline void on_alloc(void* p) noexcept {
  if (p == nullptr) return;
  const std::uint64_t size = malloc_usable_size(p);
  const std::uint64_t now =
      g_live.fetch_add(size, std::memory_order_relaxed) + size;
  std::uint64_t peak = g_peak.load(std::memory_order_relaxed);
  while (now > peak && !g_peak.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

inline void on_free(void* p) noexcept {
  if (p == nullptr) return;
  g_live.fetch_sub(malloc_usable_size(p), std::memory_order_relaxed);
}

[[nodiscard]] inline std::uint64_t live() noexcept {
  return g_live.load(std::memory_order_relaxed);
}

/// Restart high-water tracking from the current live size.
inline void reset_peak() noexcept {
  g_peak.store(live(), std::memory_order_relaxed);
}

[[nodiscard]] inline std::uint64_t peak() noexcept {
  return g_peak.load(std::memory_order_relaxed);
}

inline void* aligned_raw(std::size_t size, std::size_t align) noexcept {
  void* p = nullptr;
  if (posix_memalign(&p, align, size) != 0) return nullptr;
  return p;
}

}  // namespace membench

void* operator new(std::size_t size) {
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  membench::on_alloc(p);
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  void* p = std::malloc(size != 0 ? size : 1);
  membench::on_alloc(p);
  return p;
}

void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = membench::aligned_raw(size != 0 ? size : 1,
                                  static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  membench::on_alloc(p);
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  void* p = membench::aligned_raw(size != 0 ? size : 1,
                                  static_cast<std::size_t>(align));
  membench::on_alloc(p);
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t& t) noexcept {
  return ::operator new(size, align, t);
}

void operator delete(void* p) noexcept {
  membench::on_free(p);
  std::free(p);
}
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  ::operator delete(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  ::operator delete(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  membench::on_free(p);
  std::free(p);
}
void operator delete[](void* p, std::align_val_t a) noexcept {
  ::operator delete(p, a);
}
void operator delete(void* p, std::size_t, std::align_val_t a) noexcept {
  ::operator delete(p, a);
}
void operator delete[](void* p, std::size_t, std::align_val_t a) noexcept {
  ::operator delete(p, a);
}

// --- bench -----------------------------------------------------------------

namespace {

vmat::NetworkSpec bench_keys(std::uint64_t seed) {
  vmat::NetworkSpec cfg;
  cfg.keys.pool_size = 1000;
  cfg.keys.ring_size = 180;
  cfg.keys.seed = seed;
  return cfg;
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Deterministic non-uniform readings: the minimum (value 7) sits mid-id so
/// the digest depends on real aggregation, not a constant plain.
std::vector<vmat::Reading> cell_readings(std::uint32_t n) {
  std::vector<vmat::Reading> readings(n);
  for (std::uint32_t id = 0; id < n; ++id)
    readings[id] = 500 + static_cast<vmat::Reading>(id % 1000);
  readings[n / 2] = 7;
  return readings;
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

/// Fold every outcome field that the protocol determines (not timing) into
/// one 64-bit value. Used to assert bit-identical behavior across thread
/// counts and fabric memory modes.
std::uint64_t outcome_digest(const vmat::ExecutionOutcome& out) {
  std::uint64_t h = 0x564d4154u;  // "VMAT"
  h = mix(h, static_cast<std::uint64_t>(out.kind));
  h = mix(h, static_cast<std::uint64_t>(out.trigger));
  h = mix(h, static_cast<std::uint64_t>(out.data_rounds));
  h = mix(h, out.fabric_bytes);
  h = mix(h, out.minima.size());
  for (const vmat::Reading r : out.minima)
    h = mix(h, static_cast<std::uint64_t>(r));
  h = mix(h, out.revoked_keys.size());
  for (const auto k : out.revoked_keys) h = mix(h, k.value);
  h = mix(h, out.revoked_sensors.size());
  for (const auto s : out.revoked_sensors) h = mix(h, s.value);
  return h;
}

struct CellRun {
  double exec_ms{0.0};        ///< run_min wall time
  std::uint64_t peak_bytes{0};  ///< heap high-water delta over the run
  std::uint64_t digest{0};
};

/// One full clean execution at `n` on `topo`, with heap accounting over
/// [Network construction .. run_min returns].
CellRun run_cell(const vmat::Topology& topo, std::uint32_t n,
                 vmat::MemoryMode mode = vmat::MemoryMode::kAuto) {
  CellRun run;
  auto cfg = bench_keys(n);
  cfg.memory_mode = mode;
  const std::uint64_t live_before = membench::live();
  membench::reset_peak();
  vmat::Network net(topo, cfg);
  vmat::VmatCoordinator coordinator(&net, nullptr, vmat::CoordinatorSpec{});
  const auto readings = cell_readings(n);
  const auto start = std::chrono::steady_clock::now();
  const auto out = coordinator.run_min(readings);
  run.exec_ms = ms_since(start);
  if (out.kind != vmat::OutcomeKind::kResult) {
    std::fprintf(stderr, "bench_memory: clean run failed at n=%u: %s\n", n,
                 out.reason.c_str());
    std::abort();
  }
  run.peak_bytes = membench::peak() - live_before;
  run.digest = outcome_digest(out);
  return run;
}

/// Digest of one execution under a forced intra-execution thread count.
std::uint64_t digest_at_threads(const vmat::Topology& topo, std::uint32_t n,
                                std::size_t exec_threads) {
  vmat::set_intra_execution_threads(exec_threads);
  const std::uint64_t digest = run_cell(topo, n).digest;
  vmat::set_intra_execution_threads(0);
  return digest;
}

[[nodiscard]] bool env_flag(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

/// Pre-diet reference for the acceptance gate: bytes/node of a clean
/// n=8000 execution measured by this same binary at the commit preceding
/// the memory diet (eager rings, nested parents/audits, resident fabric).
/// Override with VMAT_BENCH_PREDIET_BPN when re-baselining.
constexpr double kPreDietBytesPerNodeN8000 = 3129.05;

/// VMAT_BENCH_ACCEPT=1: the PR's acceptance gate. Clean n=8000 must come
/// in at >= 5x fewer heap bytes per node than the pre-diet measurement,
/// with the digest unchanged across memory modes. Non-zero exit on a miss.
int run_acceptance_gate() {
  constexpr std::uint32_t n = 8000;
  double pre_diet = kPreDietBytesPerNodeN8000;
  if (const char* env = std::getenv("VMAT_BENCH_PREDIET_BPN"))
    pre_diet = std::atof(env);
  std::printf("MEMORY acceptance gate | clean n=%u vs pre-diet %.0f B/node\n",
              n, pre_diet);
  const double radius = vmat::Topology::connected_radius(n);
  auto topo = vmat::Topology::random_geometric(n, radius, 7);
  topo.shed_adjacency();

  const CellRun resident = run_cell(topo, n, vmat::MemoryMode::kResident);
  const CellRun streaming = run_cell(topo, n, vmat::MemoryMode::kStreaming);
  const bool digests_ok = resident.digest == streaming.digest;
  std::printf("  mode digests:  %016llx / %016llx  %s\n",
              static_cast<unsigned long long>(resident.digest),
              static_cast<unsigned long long>(streaming.digest),
              digests_ok ? "PASS" : "FAIL");
  const double bpn = static_cast<double>(resident.peak_bytes) / n;
  const double reduction = pre_diet / bpn;
  const bool diet_ok = reduction >= 5.0;
  std::printf("  bytes/node:    %.0f, %.2fx vs pre-diet (need >= 5.00x)  %s\n",
              bpn, reduction, diet_ok ? "PASS" : "FAIL");
  const bool ok = digests_ok && diet_ok;
  std::printf("MEMORY acceptance gate: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main() {
  if (env_flag("VMAT_BENCH_ACCEPT")) return run_acceptance_gate();

  std::printf(
      "MEMORY | heap bytes per sensor for one clean execution "
      "(peak-live delta over Network ctor + run_min)\n\n");

  std::vector<std::uint32_t> sizes = {8000u, 50000u, 100000u, 250000u};
  if (env_flag("VMAT_BENCH_FULL")) sizes.push_back(1000000u);
  if (vmat::bench::smoke()) sizes = {4000u};
  if (const char* env = std::getenv("VMAT_BENCH_MAX_N");
      env != nullptr && *env != '\0') {
    const auto max_n = static_cast<std::uint32_t>(std::atoll(env));
    std::erase_if(sizes, [max_n](std::uint32_t n) { return n > max_n; });
  }

  vmat::bench::BenchReport report("bench_memory");
  report.config("sizes", static_cast<std::int64_t>(sizes.size()));

  // Memory numbers are deterministic; the wall-time column still wants an
  // uncontended timing, so every cell runs on a dedicated serial pool.
  vmat::ThreadPool serial(1);

  vmat::TablePrinter table({"n", "bytes/node", "resident", "streaming",
                            "peak MB", "topo B/node", "exec ms", "digest"});
  for (const std::uint32_t n : sizes) {
    const double radius = vmat::Topology::connected_radius(n);
    const std::uint64_t live_before_topo = membench::live();
    auto topo = vmat::Topology::random_geometric(n, radius, 7);
    // Large deployments keep only the CSR form; every read path below
    // works off it, and the nested adjacency lists would otherwise
    // dominate the topology's footprint.
    topo.shed_adjacency();
    const std::uint64_t topo_bytes = membench::live() - live_before_topo;

    CellRun measured;
    auto& group = report.group("clean n=" + std::to_string(n));
    vmat::bench::timed_trials(
        group, 1, 0,
        [&](std::size_t, vmat::Rng&) { measured = run_cell(topo, n); },
        &serial);

    // Determinism cross-checks: identical outcome digest for forced
    // execution-thread counts 1, 4, and hardware concurrency.
    const std::size_t hw =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}, hw}) {
      const std::uint64_t digest = digest_at_threads(topo, n, threads);
      if (digest != measured.digest) {
        std::fprintf(stderr,
                     "bench_memory: digest mismatch at n=%u threads=%zu "
                     "(%016llx vs %016llx)\n",
                     n, threads,
                     static_cast<unsigned long long>(digest),
                     static_cast<unsigned long long>(measured.digest));
        return 1;
      }
    }

    // ... and with the streaming fabric mode forced on and off (the
    // measured cell ran kAuto). Keeps both runs' bytes/node so the table
    // shows what the mode is worth at this n.
    const CellRun resident = run_cell(topo, n, vmat::MemoryMode::kResident);
    const CellRun streaming = run_cell(topo, n, vmat::MemoryMode::kStreaming);
    for (const CellRun* forced : {&resident, &streaming}) {
      if (forced->digest != measured.digest) {
        std::fprintf(stderr,
                     "bench_memory: digest mismatch at n=%u between memory "
                     "modes (%016llx vs %016llx)\n",
                     n, static_cast<unsigned long long>(forced->digest),
                     static_cast<unsigned long long>(measured.digest));
        return 1;
      }
    }

    const double bytes_per_node =
        static_cast<double>(measured.peak_bytes) / n;
    const double topo_per_node = static_cast<double>(topo_bytes) / n;
    group.metric("bytes_per_node", bytes_per_node);
    group.metric("peak_mb", static_cast<double>(measured.peak_bytes) / 1e6);
    group.metric("topo_bytes_per_node", topo_per_node);
    group.metric("bytes_per_node_resident",
                 static_cast<double>(resident.peak_bytes) / n);
    group.metric("bytes_per_node_streaming",
                 static_cast<double>(streaming.peak_bytes) / n);
    group.metric("exec_ms_min", measured.exec_ms);
    // Digest split into two 32-bit halves: every metric is a double, and
    // 32-bit integers round-trip exactly.
    group.metric("digest_hi", static_cast<double>(measured.digest >> 32));
    group.metric("digest_lo",
                 static_cast<double>(measured.digest & 0xffffffffull));

    char digest_hex[20];
    std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                  static_cast<unsigned long long>(measured.digest));
    table.add_row({std::to_string(n), vmat::TablePrinter::fmt(bytes_per_node, 0),
                   vmat::TablePrinter::fmt(
                       static_cast<double>(resident.peak_bytes) / n, 0),
                   vmat::TablePrinter::fmt(
                       static_cast<double>(streaming.peak_bytes) / n, 0),
                   vmat::TablePrinter::fmt(measured.peak_bytes / 1e6, 1),
                   vmat::TablePrinter::fmt(topo_per_node, 0),
                   vmat::TablePrinter::fmt(measured.exec_ms, 1), digest_hex});
  }
  table.print();
  report.write();
  return 0;
}
