// ABL-SOF — ablation for Section IV-C: slotted vs unslotted one-time
// flooding.
//
// The slotting guarantees the SOF audit trail is at most L+1 tuples: a
// forwarder that receives the first veto in interval i forwards in i+1 and
// the phase simply ends after L intervals. Without slotting, an adversary
// that keeps re-injecting the veto late can stretch trails (and thus the
// later pinpointing walk) far beyond L.
//
// The delaying adversary here drops the veto passing through it and
// re-injects it much later; honest one-time forwarders that had not seen it
// yet then propagate it with large intervals.
//
// Not eligible for snapshot-fork / epoch reuse: this bench drives the raw
// SOF phase primitives directly (no coordinator, no execution prefix to
// capture or epoch to reuse).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "attack/strategies.h"
#include "core/confirmation.h"
#include "core/tree_formation.h"
#include "trial_runner.h"
#include "util/stats.h"

namespace {

/// Holds the first veto seen and re-injects it in a late interval.
class DelayVetoStrategy final : public vmat::PolicyStrategy {
 public:
  explicit DelayVetoStrategy(vmat::Interval replay_at)
      : vmat::PolicyStrategy(vmat::LiePolicy::kDenyAll),
        replay_at_(replay_at) {}

  void on_conf_slot(vmat::AdversaryView& view,
                    const vmat::ConfCtx& ctx) override {
    if (ctx.slot != replay_at_) return;
    for (vmat::NodeId m : view.malicious()) {
      const auto& seen = (*ctx.malicious_vetoes)[m.value];
      if (seen.empty()) continue;
      const vmat::Bytes frame = vmat::encode(seen.front());
      for (vmat::NodeId v : view.net().topology().neighbors(m)) {
        if (view.is_malicious(v)) continue;
        const auto key = view.attack_key_for(v);
        if (key.has_value()) (void)view.inject(m, v, m, *key, frame);
      }
    }
  }

 private:
  vmat::Interval replay_at_;
};

vmat::NetworkSpec bench_keys() {
  vmat::NetworkSpec cfg;
  cfg.keys.pool_size = 400;
  cfg.keys.ring_size = 120;
  cfg.keys.seed = 21;
  return cfg;
}

struct TrailStats {
  vmat::Interval max_interval{0};
  std::size_t forwarders{0};
};

TrailStats run_case(bool slotted, vmat::Interval replay_at) {
  // Two arms rooted at the BS: the vetoer's arm (short) and a long arm the
  // delayed replay creeps along. The malicious node bridges the two arms,
  // so the replayed veto reaches sensors the original flood never reached
  // (they are far from the vetoer).
  const std::uint32_t kArm = 12;
  vmat::Topology topo(2 * kArm + 2);
  // Arm A: 0-1-...-kArm (vetoer at kArm).
  for (std::uint32_t i = 0; i < kArm; ++i)
    topo.add_edge(vmat::NodeId{i}, vmat::NodeId{i + 1});
  // Arm B: 0-(kArm+1)-...-(2kArm).
  topo.add_edge(vmat::NodeId{0}, vmat::NodeId{kArm + 1});
  for (std::uint32_t i = kArm + 1; i < 2 * kArm; ++i)
    topo.add_edge(vmat::NodeId{i}, vmat::NodeId{i + 1});
  // Malicious bridge node adjacent to the vetoer and to the END of arm B.
  const vmat::NodeId bridge{2 * kArm + 1};
  topo.add_edge(vmat::NodeId{kArm}, bridge);
  topo.add_edge(bridge, vmat::NodeId{2 * kArm});

  vmat::Network net(topo, bench_keys());
  vmat::Adversary adv(&net, {bridge},
                      std::make_unique<DelayVetoStrategy>(replay_at));

  vmat::TreePhaseParams tp;
  tp.depth_bound = topo.depth({bridge});
  tp.session = 1;
  const auto tree = run_tree_formation(net, &adv, tp);

  vmat::ValueTable values(net.node_count(), 1, 0);
  for (std::uint32_t id = 0; id < net.node_count(); ++id)
    values.data[id] = 100 + static_cast<vmat::Reading>(id);
  values.data[kArm] = 1;  // the vetoer undercuts the broadcast minimum

  vmat::AuditLog audits(net.node_count());
  (void)run_confirmation(net, &adv, tree, {50}, 9, values, audits, slotted);

  TrailStats stats;
  for (std::uint32_t id = 1; id < net.node_count(); ++id) {
    const vmat::SofRecord* rec = audits.sof(vmat::NodeId{id});
    if (rec == nullptr) continue;
    ++stats.forwarders;
    stats.max_interval = std::max(stats.max_interval, rec->forward_interval);
  }
  return stats;
}

}  // namespace

int main() {
  std::printf(
      "ABL-SOF | Section IV-C: audit-trail length (max SOF forward "
      "interval), slotted vs unslotted flooding\n\n");

  // The six (replay, slotted) cases are independent protocol runs — fan
  // them out over the trial engine (each case is deterministic; the engine
  // rng is unused).
  struct Case {
    vmat::Interval replay;
    bool slotted;
  };
  std::vector<Case> cases;
  for (const vmat::Interval replay : {20, 40, 60})
    for (const bool slotted : {true, false}) cases.push_back({replay, slotted});

  vmat::bench::BenchReport report("ablation_sof");
  report.config("cases", static_cast<std::int64_t>(cases.size()));
  auto& group = report.group("cases");
  std::vector<TrailStats> stats(cases.size());
  vmat::bench::timed_trials(group, cases.size(), 0,
                            [&](std::size_t i, vmat::Rng&) {
                              stats[i] = run_case(cases[i].slotted,
                                                  cases[i].replay);
                            });

  vmat::TablePrinter table({"replay interval", "mode", "max trail interval",
                            "sensors holding a tuple", "bound L+1"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    // L for this topology (excluding the bridge) is 2*kArm = 24.
    table.add_row({std::to_string(cases[i].replay),
                   cases[i].slotted ? "slotted" : "unslotted",
                   std::to_string(stats[i].max_interval),
                   std::to_string(stats[i].forwarders), "25"});
  }
  table.print();
  report.write();

  std::printf(
      "\nShape checks vs paper: slotted SOF keeps every audit tuple's "
      "interval <= L+1 no matter when the\nadversary replays; unslotted "
      "flooding lets trails grow with the replay time, inflating the\n"
      "pinpointing walk the base station must later pay for.\n");
  return 0;
}
