// FIG-NEUT — quantifies the abstract's core promise: "malicious sensors
// can only ruin the aggregation result for a small number of times before
// they are fully revoked".
//
// For f ∈ {1,2,4} junk-injecting attackers and several θ settings we run
// repeated queries until the adversary is permanently neutralized, and
// report how many queries it managed to disrupt, how many of its keys were
// individually pinpointed, and whether any honest sensor was caught in a
// θ cascade. The sparse-key regime (mean pairwise ring overlap 2) matches
// the Figure 7 analysis scaled to simulator size.
//
// The repeated-query loop serves each query over the current epoch
// (prepare_epoch + run_query) instead of re-forming a tree per execution:
// the protocol only demands re-formation when a revocation invalidates the
// epoch, so the quiet tail of every campaign — and every disruption that
// exposes no key — reuses the formed tree. The "formations" column counts
// what that reuse saves versus one formation per query.
#include <cstdio>
#include <memory>

#include "core/coordinator.h"
#include "spec/attack_spec.h"
#include "trial_runner.h"
#include "util/stats.h"

namespace {

struct Outcome {
  int executions{0};
  int disrupted{0};
  std::uint64_t formations{0};
  std::size_t pinpointed{0};
  std::size_t attackers_fully_revoked{0};
  std::size_t honest_revoked{0};
  bool recovered{false};
};

Outcome run_campaign(std::uint32_t f, std::uint32_t theta,
                     std::uint64_t seed) {
  const auto topo = vmat::Topology::random_geometric(60, 0.32, seed);

  vmat::NetworkSpec netcfg;
  netcfg.keys.pool_size = 800;
  netcfg.keys.ring_size = 40;
  netcfg.keys.seed = seed;
  netcfg.revocation_threshold = theta;
  vmat::Network net(topo, netcfg);
  (void)net.establish_path_keys();

  // The attack, declaratively: junk injection in the first aggregation
  // slot under the sensors' own names (the zoo's JunkInjectStrategy with
  // frame=false, as an AttackSpec genome).
  vmat::AttackSpec attack;
  attack.compromised(f).placement_seed(seed + 5);
  attack.policy({.agg = vmat::campaign::AggAction::kInjectJunk,
                 .frame_honest_origin = false});
  attack.when(vmat::campaign::AttackPredicate::slot_at_least(1) &&
              !vmat::campaign::AttackPredicate::slot_at_least(2));
  auto built = attack.build(net);
  if (!built.has_value()) {
    std::fprintf(stderr, "FIG-NEUT: %s\n", built.error().to_string().c_str());
    std::exit(1);
  }
  std::unique_ptr<vmat::Adversary> adv = std::move(built.value());
  const auto& malicious = adv->malicious();

  vmat::CoordinatorSpec cfg;
  cfg.depth_bound = topo.depth(malicious) + 2;
  cfg.seed = seed;
  vmat::VmatCoordinator coordinator(&net, adv.get(), cfg);

  std::vector<std::vector<vmat::Reading>> values(net.node_count());
  std::vector<std::vector<std::int64_t>> weights(net.node_count());
  for (std::uint32_t id = 0; id < net.node_count(); ++id) {
    values[id] = {100 + static_cast<vmat::Reading>(id)};
    weights[id] = {0};
  }

  Outcome out;
  int consecutive_results = 0;
  for (int e = 0; e < 400 && consecutive_results < 5; ++e) {
    if (!coordinator.epoch_ready()) (void)coordinator.prepare_epoch();
    const auto r = coordinator.run_query(values, weights);
    ++out.executions;
    if (r.produced_result()) {
      ++consecutive_results;
    } else {
      consecutive_results = 0;
      ++out.disrupted;
    }
  }
  out.recovered = consecutive_results >= 5;
  out.formations = coordinator.formations_run();
  out.pinpointed = net.revocation().pinpointed_key_count();
  for (vmat::NodeId m : malicious)
    if (net.revocation().is_sensor_revoked(m)) ++out.attackers_fully_revoked;
  for (vmat::NodeId s : net.revocation().revoked_sensors_in_order())
    if (!malicious.contains(s)) ++out.honest_revoked;
  return out;
}

}  // namespace

int main() {
  std::printf(
      "FIG-NEUT | disrupted queries before permanent recovery (junk "
      "injectors, geometric n=60, sparse rings r=40/u=800)\n\n");

  vmat::bench::BenchReport report("fig_neutralization");
  report.config("nodes", static_cast<std::int64_t>(60));
  report.config("pool", static_cast<std::int64_t>(800));
  report.config("ring", static_cast<std::int64_t>(40));

  // The nine campaigns are independent deterministic runs (each fixes its
  // own seed; the engine rng is unused) — fan them out over the trial pool.
  struct Config {
    std::uint32_t f;
    std::uint32_t theta;
  };
  std::vector<Config> configs;
  for (const std::uint32_t f : {1u, 2u, 4u})
    for (const std::uint32_t theta : {0u, 8u, 14u})
      configs.push_back({f, theta});
  std::vector<Outcome> outcomes(configs.size());
  auto& group = report.group("campaigns");
  vmat::bench::timed_trials(group, configs.size(), 0,
                            [&](std::size_t i, vmat::Rng&) {
                              outcomes[i] = run_campaign(
                                  configs[i].f, configs[i].theta,
                                  40 + configs[i].f);
                            });

  vmat::TablePrinter table({"f", "theta", "queries disrupted",
                            "keys pinpointed", "attackers fully revoked",
                            "honest mis-revoked", "formations",
                            "recovered"});
  double total_queries = 0, total_formations = 0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Outcome& o = outcomes[i];
    total_queries += o.executions;
    total_formations += static_cast<double>(o.formations);
    table.add_row({std::to_string(configs[i].f),
                   configs[i].theta == 0 ? "off"
                                         : std::to_string(configs[i].theta),
                   std::to_string(o.disrupted),
                   std::to_string(o.pinpointed),
                   std::to_string(o.attackers_fully_revoked) + "/" +
                       std::to_string(configs[i].f),
                   std::to_string(o.honest_revoked),
                   std::to_string(o.formations) + "/" +
                       std::to_string(o.executions),
                   o.recovered ? "yes" : "NO"});
  }
  table.print();
  report.result("queries", total_queries);
  report.result("formations", total_formations);
  report.result("formation_reuse",
                total_queries > 0 ? 1.0 - total_formations / total_queries
                                  : 0.0);
  report.write();

  std::printf(
      "\nShape checks vs paper: every campaign recovers, and the number of "
      "ruined queries is bounded by the\nadversary's exposable keys. With "
      "theta off an attacker is only stopped by exhausting its ring key\n"
      "by key; any finite theta fully revokes it after theta pinpointed "
      "keys, and the smaller theta wins\n(Section VI-C: smaller thresholds "
      "revoke faster). At this sparse-ring scale (overlap ~2) even\n"
      "theta=8 revokes no honest sensor -- the mis-revocation side of the "
      "tradeoff needs fig7's r=250\nrings to bite. Epoch reuse pays for "
      "the whole quiet tail: formations stay at one per disrupted\n"
      "query plus the formation-free recovery streak.\n");
  return 0;
}
