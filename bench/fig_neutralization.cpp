// FIG-NEUT — quantifies the abstract's core promise: "malicious sensors
// can only ruin the aggregation result for a small number of times before
// they are fully revoked".
//
// For f ∈ {1,2,4} junk-injecting attackers and several θ settings we run
// repeated queries until the adversary is permanently neutralized, and
// report how many queries it managed to disrupt, how many of its keys were
// individually pinpointed, and whether any honest sensor was caught in a
// θ cascade. The sparse-key regime (mean pairwise ring overlap 2) matches
// the Figure 7 analysis scaled to simulator size.
#include <cstdio>
#include <memory>

#include "attack/strategies.h"
#include "core/coordinator.h"
#include "util/stats.h"

namespace {

struct Outcome {
  int disrupted{0};
  std::size_t pinpointed{0};
  std::size_t attackers_fully_revoked{0};
  std::size_t honest_revoked{0};
  bool recovered{false};
};

Outcome run_campaign(std::uint32_t f, std::uint32_t theta,
                     std::uint64_t seed) {
  const auto topo = vmat::Topology::random_geometric(60, 0.32, seed);
  const auto malicious = vmat::choose_malicious(topo, f, seed + 5);

  vmat::NetworkSpec netcfg;
  netcfg.keys.pool_size = 800;
  netcfg.keys.ring_size = 40;
  netcfg.keys.seed = seed;
  netcfg.revocation_threshold = theta;
  vmat::Network net(topo, netcfg);
  (void)net.establish_path_keys();

  vmat::Adversary adv(&net, malicious,
                      std::make_unique<vmat::JunkInjectStrategy>(
                          vmat::LiePolicy::kDenyAll, /*frame=*/false));
  vmat::CoordinatorSpec cfg;
  cfg.depth_bound = topo.depth(malicious) + 2;
  cfg.seed = seed;
  vmat::VmatCoordinator coordinator(&net, &adv, cfg);

  std::vector<vmat::Reading> readings(net.node_count());
  for (std::uint32_t id = 0; id < net.node_count(); ++id)
    readings[id] = 100 + static_cast<vmat::Reading>(id);

  Outcome out;
  int consecutive_results = 0;
  for (int e = 0; e < 400 && consecutive_results < 5; ++e) {
    const auto r = coordinator.run_min(readings);
    if (r.produced_result()) {
      ++consecutive_results;
    } else {
      consecutive_results = 0;
      ++out.disrupted;
    }
  }
  out.recovered = consecutive_results >= 5;
  out.pinpointed = net.revocation().pinpointed_key_count();
  for (vmat::NodeId m : malicious)
    if (net.revocation().is_sensor_revoked(m)) ++out.attackers_fully_revoked;
  for (vmat::NodeId s : net.revocation().revoked_sensors_in_order())
    if (!malicious.contains(s)) ++out.honest_revoked;
  return out;
}

}  // namespace

int main() {
  std::printf(
      "FIG-NEUT | disrupted queries before permanent recovery (junk "
      "injectors, geometric n=60, sparse rings r=40/u=800)\n\n");

  vmat::TablePrinter table({"f", "theta", "queries disrupted",
                            "keys pinpointed", "attackers fully revoked",
                            "honest mis-revoked", "recovered"});
  for (const std::uint32_t f : {1u, 2u, 4u}) {
    for (const std::uint32_t theta : {0u, 8u, 14u}) {
      const Outcome o = run_campaign(f, theta, 40 + f);
      table.add_row({std::to_string(f),
                     theta == 0 ? "off" : std::to_string(theta),
                     std::to_string(o.disrupted),
                     std::to_string(o.pinpointed),
                     std::to_string(o.attackers_fully_revoked) + "/" +
                         std::to_string(f),
                     std::to_string(o.honest_revoked),
                     o.recovered ? "yes" : "NO"});
    }
  }
  table.print();

  std::printf(
      "\nShape checks vs paper: every campaign recovers, and the number of "
      "ruined queries is bounded by the\nadversary's exposable keys. theta "
      "trades speed against safety exactly as Section VI-C predicts: a\n"
      "theta near the honest-overlap mean (8 here) kills attackers fastest "
      "but cascades into honest rings\nonce f grows, while a theta a few "
      "deviations higher (14) stays perfectly safe and still cuts the\n"
      "disruption count ~3x versus no threshold.\n");
  return 0;
}
