// THM7 — round-complexity table (Theorems 2, 6, 7 and the Section I
// comparison against the set-sampling approach [29]):
//
//  * VMAT data path: O(1) flooding rounds regardless of n (measured: 6).
//  * VMAT pinpointing: O(L log n) rounds, only paid when attacked.
//  * Set sampling [29]: Ω(log n) rounds on *every* query, attack or not.
//
// The pinpointing rows use a "gauntlet" topology that forces the dropped
// minimum through a malicious node sitting `L` hops deep, so the veto walk
// has to track the full trail.
#include <cmath>
#include <cstdio>
#include <memory>

#include "attack/strategies.h"
#include "baseline/sampling.h"
#include "core/coordinator.h"
#include "util/stats.h"

namespace {

/// Chain 0-1-...-depth with the malicious node in the middle, plus a
/// parallel honest detour of the same length connected to the far end.
struct Gauntlet {
  vmat::Topology topo;
  vmat::NodeId malicious;
  std::uint32_t vetoer;
};

Gauntlet make_gauntlet(std::uint32_t depth) {
  // Nodes: 0 (BS); chain 1..depth; detour depth+1..2*depth (same length).
  vmat::Topology t(2 * depth + 1);
  for (std::uint32_t i = 0; i < depth; ++i)
    t.add_edge(vmat::NodeId{i}, vmat::NodeId{i + 1});
  t.add_edge(vmat::NodeId{0}, vmat::NodeId{depth + 1});
  for (std::uint32_t i = depth + 1; i < 2 * depth; ++i)
    t.add_edge(vmat::NodeId{i}, vmat::NodeId{i + 1});
  t.add_edge(vmat::NodeId{2 * depth}, vmat::NodeId{depth});  // join far ends
  return {std::move(t), vmat::NodeId{depth / 2}, depth};
}

vmat::NetworkSpec bench_keys(std::uint64_t seed) {
  vmat::NetworkSpec cfg;
  cfg.keys.pool_size = 400;
  cfg.keys.ring_size = 120;
  cfg.keys.seed = seed;
  return cfg;
}

}  // namespace

int main() {
  std::printf(
      "THM7 | flooding-round complexity: VMAT O(1) data path, O(L log n) "
      "pinpointing, sampling Omega(log n)\n\n");

  {
    vmat::TablePrinter table({"n", "L", "VMAT data rounds (clean query)",
                              "sampling rounds per query"});
    for (const std::uint32_t side : {4u, 8u, 16u, 24u}) {
      const std::uint32_t n = side * side;
      vmat::Network net(vmat::Topology::grid(side, side), bench_keys(3));
      vmat::VmatCoordinator coordinator(&net, nullptr, vmat::CoordinatorSpec{});
      std::vector<vmat::Reading> readings(n, 100);
      const auto out = coordinator.run_min(readings);
      const auto sampling = vmat::run_set_sampling_count(
          std::vector<std::uint8_t>(n, 1), {});
      table.add_row({std::to_string(n),
                     std::to_string(coordinator.effective_depth_bound()),
                     std::to_string(out.data_rounds),
                     std::to_string(sampling.flooding_rounds)});
    }
    std::printf("clean queries (no attack):\n");
    table.print();
    std::printf("\n");
  }

  {
    vmat::TablePrinter table({"L (trail depth)", "n", "pinpoint rounds",
                              "predicate tests", "rounds / (L log2 n)"});
    for (const std::uint32_t depth : {4u, 8u, 16u, 32u}) {
      Gauntlet g = make_gauntlet(depth);
      vmat::Network net(std::move(g.topo), bench_keys(depth));
      vmat::Adversary adv(
          &net, {g.malicious},
          std::make_unique<vmat::SilentDropStrategy>(vmat::LiePolicy::kDenyAll));
      vmat::CoordinatorSpec cfg;
      cfg.depth_bound =
          net.topology().depth(std::unordered_set<vmat::NodeId>{g.malicious});
      vmat::VmatCoordinator coordinator(&net, &adv, cfg);
      std::vector<vmat::Reading> readings(net.node_count(), 1000);
      readings[g.vetoer] = 1;  // minimum sits behind the malicious node
      const auto out = coordinator.run_min(readings);
      const double l_log_n =
          static_cast<double>(cfg.depth_bound) *
          std::log2(static_cast<double>(net.node_count()));
      const char* kind =
          out.kind == vmat::OutcomeKind::kRevocation ? "" : " (no attack!)";
      table.add_row(
          {std::to_string(depth) + kind, std::to_string(net.node_count()),
           std::to_string(out.pinpoint_cost.flooding_rounds),
           std::to_string(out.pinpoint_cost.predicate_tests),
           vmat::TablePrinter::fmt(out.pinpoint_cost.flooding_rounds / l_log_n,
                                   2)});
    }
    std::printf(
        "attacked queries (silent dropper %s deep): pinpointing cost\n",
        "L/2 hops");
    table.print();
  }

  std::printf(
      "\nShape checks vs paper: data rounds constant in n; pinpoint rounds "
      "track L log n (last column ~constant);\nsampling pays log n on every "
      "query even with no adversary.\n");
  return 0;
}
