// SERVE — vmatd load bench: a multi-tenant daemon under an open-loop
// request stream.
//
// Two groups land in BENCH_serve.json:
//
//  * "burst ..." — deterministic perf gate. A fresh Daemon per repeat is
//    driven through its direct request API (no sockets, no timing): a
//    fixed round-robin burst of COUNT/SUM/AVERAGE/MIN/MAX/quantile
//    submissions across every tenant, then tick() to completion. The
//    request sequence is fixed, so the packing — and therefore the fabric
//    byte count — is bit-stable: the group emits exec_ms_min (wall gate)
//    and fabric_kb (drift gate) for tools/perf_compare.py. A determinism
//    cross-check replays the burst on ThreadPool(1) vs ThreadPool(hw)
//    daemons and requires bit-identical estimates.
//
//  * "open-loop ..." — the latency story. The daemon serves the frame
//    protocol on one end of a socketpair from its own thread; the client
//    submits at target QPS on an open-loop schedule (send times fixed in
//    advance — a slow server does NOT slow the arrival process) and
//    measures each query's latency from its INTENDED arrival time to the
//    poll that observed its result, so queue buildup is charged to the
//    server (no coordinated omission). Reports sustained throughput and
//    interpolated p50/p95/p99 latency. Timing-dependent packing makes
//    fabric bytes nondeterministic here, so this group carries no
//    fabric_kb and no wall gate — the burst group owns the CI gate.
//
// One tenant hosts a ChokeVeto adversary, so the stream exercises the
// disruption path: revocation, epoch invalidation, snapshot re-arm, retry.
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/client.h"
#include "serve/daemon.h"
#include "trial_runner.h"
#include "util/stats.h"

namespace {

using vmat::serve::Daemon;
using vmat::serve::ServeOptions;
using vmat::serve::SubmitRequest;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

ServeOptions bench_options(std::uint32_t tenants,
                           std::uint32_t adversary_tenants) {
  ServeOptions o;
  o.tenants = tenants;
  o.nodes = 36;
  o.topology = vmat::TopologyKind::kGrid;
  o.instances = 16;
  o.adversary_tenants = adversary_tenants;
  o.f = 2;
  o.seed = 7;
  return o;
}

/// Request i of the fixed mixed stream: kinds round-robin, tenants stride
/// round-robin, quantile q sweeps.
SubmitRequest make_request(std::size_t i, std::uint32_t tenants) {
  SubmitRequest r;
  r.tenant = static_cast<std::uint32_t>(i) % tenants;
  switch (i % 6) {
    case 0:
      r.kind = vmat::EngineQueryKind::kCount;
      r.threshold = 1300;
      break;
    case 1: r.kind = vmat::EngineQueryKind::kSum; break;
    case 2: r.kind = vmat::EngineQueryKind::kAverage; break;
    case 3: r.kind = vmat::EngineQueryKind::kMin; break;
    case 4: r.kind = vmat::EngineQueryKind::kMax; break;
    default:
      r.kind = vmat::EngineQueryKind::kQuantile;
      r.q = 0.25 + 0.25 * static_cast<double>(i % 3);
      r.domain_max = 2048;
      break;
  }
  return r;
}

/// Drive one fixed burst through the direct request API; returns the
/// answered estimates (in completion order) for the determinism check and
/// the total fabric bytes via `fabric_bytes`.
std::vector<double> run_burst(Daemon& daemon, std::size_t requests,
                              std::uint64_t* fabric_bytes) {
  const std::uint32_t tenants = daemon.options().tenants;
  for (std::size_t i = 0; i < requests; ++i) {
    vmat::serve::Request req;
    req.op = vmat::serve::Op::kSubmit;
    req.submit = make_request(i, tenants);
    const vmat::Bytes resp = daemon.handle_request(req);
    const auto decoded = vmat::serve::decode_response(resp);
    if (!decoded || decoded.value().error.has_value()) {
      std::fprintf(stderr, "bench_serve: burst submit %zu rejected\n", i);
      std::exit(1);
    }
  }
  while (daemon.open_total() > 0) daemon.tick();

  vmat::serve::Request poll;
  poll.op = vmat::serve::Op::kPoll;
  poll.poll_max = 0;
  const auto decoded = vmat::serve::decode_response(daemon.handle_request(poll));
  if (!decoded) {
    std::fprintf(stderr, "bench_serve: burst poll failed\n");
    std::exit(1);
  }
  std::vector<double> estimates;
  estimates.reserve(requests);
  for (const auto& rec : decoded.value().results) {
    if (!rec.answered) {
      std::fprintf(stderr, "bench_serve: burst query %llu failed (%s)\n",
                   static_cast<unsigned long long>(rec.request_id),
                   vmat::to_string(rec.error));
      std::exit(1);
    }
    estimates.push_back(rec.estimate);
  }
  if (estimates.size() != requests) {
    std::fprintf(stderr, "bench_serve: burst lost results (%zu of %zu)\n",
                 estimates.size(), requests);
    std::exit(1);
  }
  if (fabric_bytes != nullptr) {
    vmat::serve::Request stats;
    stats.op = vmat::serve::Op::kStats;
    const auto s = vmat::serve::decode_response(daemon.handle_request(stats));
    std::uint64_t total = 0;
    for (const auto& t : s.value().stats.tenants) total += t.fabric_bytes;
    *fabric_bytes = total;
  }
  return estimates;
}

/// The engine determinism contract, extended through the daemon: the same
/// request sequence on a serial pool and a wide pool must produce
/// bit-identical estimates.
void check_determinism(std::size_t requests, std::uint32_t tenants,
                       std::uint32_t adversary_tenants) {
  vmat::ThreadPool serial(1);
  vmat::ThreadPool wide(0);  // default_thread_count()
  Daemon a(bench_options(tenants, adversary_tenants), &serial);
  Daemon b(bench_options(tenants, adversary_tenants), &wide);
  const std::vector<double> ea = run_burst(a, requests, nullptr);
  const std::vector<double> eb = run_burst(b, requests, nullptr);
  for (std::size_t i = 0; i < ea.size(); ++i) {
    if (ea[i] != eb[i]) {  // bit-identical, not approximately equal
      std::fprintf(stderr,
                   "bench_serve: DETERMINISM VIOLATION at query %zu: "
                   "%.17g (1 thread) vs %.17g (wide pool)\n",
                   i, ea[i], eb[i]);
      std::exit(1);
    }
  }
  std::printf("determinism: %zu estimates bit-identical across pools\n",
              ea.size());
}

struct OpenLoopOutcome {
  std::vector<double> latency_ms;  // indexed by request
  double sustained_qps{0.0};
  std::uint64_t epochs_rearmed{0};
  std::uint64_t disrupted_executions{0};
};

/// Open-loop run: submissions fire on a fixed schedule (i / qps); the gaps
/// between scheduled sends are spent polling for completions.
OpenLoopOutcome run_open_loop(std::size_t requests, double target_qps,
                              std::uint32_t tenants,
                              std::uint32_t adversary_tenants) {
  int fds[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    std::perror("bench_serve: socketpair");
    std::exit(1);
  }
  Daemon daemon(bench_options(tenants, adversary_tenants));
  std::thread server([&daemon, &fds] {
    if (daemon.run(fds[1], fds[1]) != 0)
      std::fprintf(stderr, "bench_serve: daemon session error\n");
  });
  vmat::serve::ServeClient client(fds[0], fds[0]);

  OpenLoopOutcome out;
  out.latency_ms.assign(requests, 0.0);
  std::unordered_map<std::uint64_t, std::size_t> index_of;  // wire id -> i
  index_of.reserve(requests);
  const double interval_ms = 1000.0 / target_qps;
  std::size_t completed = 0;
  double last_completion_ms = 0.0;

  const Clock::time_point t0 = Clock::now();
  auto record = [&](const std::vector<vmat::serve::ResultRecord>& results) {
    const double now_ms = ms_since(t0);
    for (const auto& rec : results) {
      const auto it = index_of.find(rec.request_id);
      if (it == index_of.end()) continue;
      // Open-loop latency: observed completion minus INTENDED arrival, so
      // server-side queue buildup counts against the server.
      out.latency_ms[it->second] =
          now_ms - static_cast<double>(it->second) * interval_ms;
      completed += 1;
      last_completion_ms = now_ms;
    }
  };

  for (std::size_t i = 0; i < requests; ++i) {
    const double intended_ms = static_cast<double>(i) * interval_ms;
    while (ms_since(t0) < intended_ms) {
      const auto ready = client.poll(8);
      if (!ready) {
        std::fprintf(stderr, "bench_serve: poll failed mid-run\n");
        std::exit(1);
      }
      record(*ready);
      if (ready.value().empty())
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    const auto id = client.submit(make_request(i, tenants));
    if (!id) {
      std::fprintf(stderr, "bench_serve: submit %zu failed: %s\n", i,
                   id.error().to_string().c_str());
      std::exit(1);
    }
    index_of.emplace(*id, i);
  }
  while (completed < requests) {
    const auto ready = client.poll(0);
    if (!ready) {
      std::fprintf(stderr, "bench_serve: poll failed in drain\n");
      std::exit(1);
    }
    record(*ready);
  }
  const auto tail = client.stats();
  if (tail) {
    for (const auto& t : tail.value().tenants) {
      out.epochs_rearmed += t.epochs_rearmed;
      out.disrupted_executions += t.disrupted_executions;
    }
  }
  const auto rest = client.shutdown();
  if (rest) record(*rest);
  server.join();
  close(fds[0]);
  close(fds[1]);

  out.sustained_qps = last_completion_ms > 0.0
                          ? static_cast<double>(requests) * 1000.0 /
                                last_completion_ms
                          : 0.0;
  return out;
}

}  // namespace

int main() {
  const bool smoke = vmat::bench::smoke();
  const std::uint32_t tenants = 8;
  const std::uint32_t adversary_tenants = 1;
  const std::size_t burst_requests = smoke ? 48 : 96;
  const std::size_t open_requests = smoke ? 64 : 256;
  const double target_qps = smoke ? 48.0 : 64.0;
  const std::size_t repeats = vmat::bench::trials(3);

  vmat::bench::BenchReport report("serve");
  report.config("tenants", static_cast<std::int64_t>(tenants));
  report.config("adversary_tenants",
                static_cast<std::int64_t>(adversary_tenants));
  report.config("nodes", static_cast<std::int64_t>(36));
  report.config("instances", static_cast<std::int64_t>(16));
  report.config("burst_requests", static_cast<std::int64_t>(burst_requests));
  report.config("open_requests", static_cast<std::int64_t>(open_requests));
  report.config("target_qps", target_qps);

  check_determinism(smoke ? 24 : 48, tenants, adversary_tenants);

  // --- deterministic burst: the CI perf gate ---
  auto& burst = report.group("burst t=" + std::to_string(tenants) +
                             " q=" + std::to_string(burst_requests));
  burst.trial_ms.reserve(repeats);
  std::uint64_t fabric_bytes = 0;
  for (std::size_t r = 0; r < repeats; ++r) {
    Daemon daemon(bench_options(tenants, adversary_tenants));
    const Clock::time_point start = Clock::now();
    std::uint64_t trial_fabric = 0;
    (void)run_burst(daemon, burst_requests, &trial_fabric);
    burst.trial_ms.push_back(ms_since(start));
    if (r == 0) {
      fabric_bytes = trial_fabric;
    } else if (trial_fabric != fabric_bytes) {
      std::fprintf(stderr,
                   "bench_serve: fabric bytes drifted across repeats "
                   "(%llu vs %llu) — burst is not deterministic\n",
                   static_cast<unsigned long long>(trial_fabric),
                   static_cast<unsigned long long>(fabric_bytes));
      return 1;
    }
  }
  const double burst_min =
      vmat::percentile_nearest_rank(burst.trial_ms, 0);
  burst.metric("exec_ms_min", burst_min);
  burst.metric("fabric_kb", static_cast<double>(fabric_bytes) / 1024.0);
  burst.metric("burst_qps",
               static_cast<double>(burst_requests) * 1000.0 / burst_min);
  std::printf("burst: %zu queries in %.1f ms (%.0f q/s), %.1f KB fabric\n",
              burst_requests, burst_min,
              static_cast<double>(burst_requests) * 1000.0 / burst_min,
              static_cast<double>(fabric_bytes) / 1024.0);

  // --- open-loop latency under the target arrival rate ---
  const OpenLoopOutcome open =
      run_open_loop(open_requests, target_qps, tenants, adversary_tenants);
  auto& loop = report.group("open-loop qps=" +
                            std::to_string(static_cast<int>(target_qps)));
  const double p50 = vmat::percentile_interpolated(open.latency_ms, 50);
  const double p95 = vmat::percentile_interpolated(open.latency_ms, 95);
  const double p99 = vmat::percentile_interpolated(open.latency_ms, 99);
  loop.metric("requests", static_cast<double>(open_requests));
  loop.metric("target_qps", target_qps);
  loop.metric("sustained_qps", open.sustained_qps);
  loop.metric("p50_latency_ms", p50);
  loop.metric("p95_latency_ms", p95);
  loop.metric("p99_latency_ms", p99);
  loop.metric("max_latency_ms",
              vmat::percentile_nearest_rank(open.latency_ms, 100));
  loop.metric("epochs_rearmed", static_cast<double>(open.epochs_rearmed));
  loop.metric("disrupted_executions",
              static_cast<double>(open.disrupted_executions));
  std::printf(
      "open-loop: %zu requests at %.0f q/s target -> %.0f q/s sustained; "
      "latency p50 %.1f ms, p95 %.1f ms, p99 %.1f ms "
      "(%llu rearm(s), %llu disrupted execution(s))\n",
      open_requests, target_qps, open.sustained_qps, p50, p95, p99,
      static_cast<unsigned long long>(open.epochs_rearmed),
      static_cast<unsigned long long>(open.disrupted_executions));

  if (open.sustained_qps < 0.8 * target_qps) {
    std::fprintf(stderr,
                 "bench_serve: sustained %.0f q/s fell below 80%% of the "
                 "%.0f q/s target\n",
                 open.sustained_qps, target_qps);
    return 1;
  }

  report.result("burst_exec_ms_min", burst_min);
  report.result("sustained_qps", open.sustained_qps);
  report.result("p95_latency_ms", p95);
  report.write();
  return 0;
}
