// FIG8 — reproduces Figure 8: "Approximation quality for predicate count",
// i.e. the relative error of estimating a COUNT query via m = 100
// exponential-synopsis MIN instances (Section VIII / IX).
//
// For each true predicate count c and each of 200 trials, we form the 100
// per-instance minima and run the paper's estimator 1/((Σ a_i^min)/m). We
// report the average relative error and the 90/95/99th percentiles across
// trials — the series Figure 8 plots. Trials run on the parallel trial
// engine with independent per-trial streams (bit-identical for any
// VMAT_THREADS).
//
// Two modes:
//  * statistical (all counts): the minimum of c i.i.d. Exp(1) variables is
//    distributed Exp(mean 1/c), so each a_i^min is drawn directly — this
//    is an exact sampling shortcut, not an approximation.
//  * crypto-faithful (spot check): the minima are computed through the
//    actual PRF-based SynopsisCodec over c sensors, verifying the shortcut.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/synopsis.h"
#include "trial_runner.h"
#include "util/random.h"
#include "util/stats.h"

namespace {

constexpr std::uint32_t kInstances = 100;

std::vector<double> errors_statistical(std::int64_t count, std::uint64_t seed,
                                       std::size_t n_trials,
                                       vmat::bench::TrialGroup& group) {
  std::vector<double> errors(n_trials, 0.0);
  vmat::bench::timed_trials(
      group, n_trials, seed, [&](std::size_t trial, vmat::Rng& rng) {
        std::vector<vmat::Reading> minima(kInstances);
        for (auto& m : minima)
          m = vmat::SynopsisCodec::encode_value(
              rng.exponential(1.0 / static_cast<double>(count)));
        const double est = vmat::estimate_sum(minima);
        errors[trial] = std::abs(est - static_cast<double>(count)) /
                        static_cast<double>(count);
      });
  return errors;
}

std::vector<double> errors_crypto(std::int64_t count, std::uint64_t seed,
                                  std::size_t n_trials,
                                  vmat::bench::TrialGroup& group) {
  std::vector<double> errors(n_trials, 0.0);
  vmat::bench::timed_trials(
      group, n_trials, seed, [&](std::size_t trial, vmat::Rng& rng) {
        std::vector<vmat::Reading> minima(kInstances, vmat::kInfinity);
        const vmat::SynopsisCodec codec(rng());
        for (std::int64_t x = 1; x <= count; ++x)
          for (std::uint32_t i = 0; i < kInstances; ++i)
            minima[i] = std::min(
                minima[i],
                codec.value_for(vmat::NodeId{static_cast<std::uint32_t>(x)}, i,
                                1));
        const double est = vmat::estimate_sum(minima);
        errors[trial] = std::abs(est - static_cast<double>(count)) /
                        static_cast<double>(count);
      });
  return errors;
}

void print_series(const char* label, const std::int64_t* counts,
                  std::size_t count_n,
                  const std::vector<std::vector<double>>& errors) {
  vmat::TablePrinter table(
      {"true count", "avg rel err", "p90", "p95", "p99", "max"});
  for (std::size_t i = 0; i < count_n; ++i) {
    table.add_row({std::to_string(counts[i]),
                   vmat::TablePrinter::fmt(vmat::mean(errors[i]), 4),
                   vmat::TablePrinter::fmt(vmat::percentile_nearest_rank(errors[i], 90), 4),
                   vmat::TablePrinter::fmt(vmat::percentile_nearest_rank(errors[i], 95), 4),
                   vmat::TablePrinter::fmt(vmat::percentile_nearest_rank(errors[i], 99), 4),
                   vmat::TablePrinter::fmt(vmat::percentile_nearest_rank(errors[i], 100), 4)});
  }
  std::printf("%s\n", label);
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  const std::size_t n_trials = vmat::bench::trials(200);
  std::printf(
      "FIG8 | Figure 8: COUNT approximation error with m=%u synopses, "
      "%zu trials per point\n\n",
      kInstances, n_trials);

  vmat::bench::BenchReport report("fig8_approximation");
  report.config("instances", static_cast<std::int64_t>(kInstances));
  report.config("trials", static_cast<std::int64_t>(n_trials));

  {
    const std::int64_t counts[] = {10, 20, 50, 100, 200, 500, 1000, 2000,
                                   5000, 10000};
    std::vector<std::vector<double>> errors;
    for (std::int64_t c : counts) {
      auto& group = report.group("statistical c=" + std::to_string(c));
      errors.push_back(
          errors_statistical(c, 0xf180000 + static_cast<std::uint64_t>(c),
                             n_trials, group));
      group.metric("avg_rel_err", vmat::mean(errors.back()));
      group.metric("p95_rel_err", vmat::percentile_nearest_rank(errors.back(), 95));
    }
    print_series("statistical mode (exact Exp(1/c) minima):", counts,
                 std::size(counts), errors);
  }
  {
    const std::int64_t counts[] = {10, 100, 500};
    const std::size_t crypto_trials = vmat::bench::trials(40);
    std::vector<std::vector<double>> errors;
    for (std::int64_t c : counts) {
      auto& group = report.group("crypto c=" + std::to_string(c));
      errors.push_back(errors_crypto(c,
                                     0xf18c000 + static_cast<std::uint64_t>(c),
                                     crypto_trials, group));
      group.metric("avg_rel_err", vmat::mean(errors.back()));
    }
    print_series(
        "crypto-faithful spot check (PRF synopses):", counts,
        std::size(counts), errors);
  }

  {
    // m-sweep (ablation on the synopsis count): error ~ 1/sqrt(m), the
    // Θ(ε⁻² log δ⁻¹) sizing rule of Section VIII.
    vmat::TablePrinter table({"m synopses", "avg rel err", "p95",
                              "err x sqrt(m)"});
    for (const std::uint32_t m : {25u, 50u, 100u, 200u, 400u}) {
      constexpr std::int64_t kCount = 1000;
      std::vector<double> errors(n_trials, 0.0);
      auto& group = report.group("m-sweep m=" + std::to_string(m));
      vmat::bench::timed_trials(
          group, n_trials, 0xf185e0 + m,
          [&](std::size_t trial, vmat::Rng& rng) {
            std::vector<vmat::Reading> minima(m);
            for (auto& v : minima)
              v = vmat::SynopsisCodec::encode_value(
                  rng.exponential(1.0 / static_cast<double>(kCount)));
            errors[trial] = std::abs(vmat::estimate_sum(minima) - kCount) /
                            static_cast<double>(kCount);
          });
      const double avg = vmat::mean(errors);
      group.metric("avg_rel_err", avg);
      table.add_row({std::to_string(m), vmat::TablePrinter::fmt(avg, 4),
                     vmat::TablePrinter::fmt(vmat::percentile_nearest_rank(errors, 95), 4),
                     vmat::TablePrinter::fmt(avg * std::sqrt(double(m)), 3)});
    }
    std::printf("m-sweep at true count 1000 (err x sqrt(m) ~ constant):\n");
    table.print();
    std::printf("\n");
  }

  report.write();
  std::printf(
      "Shape checks vs paper: average relative error < 10%% at every count "
      "with 100 synopses;\ncommunication = 100 synopses x 32 B = 3.2 KB "
      "(paper: 100 x 24 B = 2.4 KB).\n");
  return 0;
}
