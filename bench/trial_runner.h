// Shared Monte-Carlo harness for the figure/table benches.
//
// Wraps util/parallel.h with the bench-side conveniences every harness
// needs: smoke-mode gating (VMAT_BENCH_SMOKE=1 shrinks trial counts so
// ctest can execute every bench), per-trial wall-clock capture, and a
// machine-readable BENCH_<name>.json report written next to the human
// tables (config, per-trial timings, aggregate stats).
//
// Determinism: trial work runs through vmat::parallel_for_trials, so the
// statistical results are bit-identical for any VMAT_THREADS. Only the
// timing columns (and the timings in the JSON) vary run to run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "attack/adversary.h"
#include "core/coordinator.h"
#include "sim/network.h"
#include "sim/snapshot.h"
#include "trace/trace.h"
#include "util/parallel.h"

namespace vmat::bench {

/// True when VMAT_BENCH_SMOKE is set (non-empty, not "0"): benches should
/// shrink to a tiny configuration that merely exercises every code path.
[[nodiscard]] bool smoke();

/// Trial count to run: VMAT_BENCH_TRIALS if set, else 2 in smoke mode,
/// else `full`.
[[nodiscard]] std::size_t trials(std::size_t full);

/// Minimal streaming JSON writer — enough structure for the BENCH_*.json
/// reports without a dependency.
class JsonWriter {
 public:
  JsonWriter();

  JsonWriter& begin_object();            // anonymous (root or array element)
  JsonWriter& begin_object(const std::string& key);
  JsonWriter& end_object();
  JsonWriter& begin_array(const std::string& key);
  JsonWriter& end_array();

  JsonWriter& field(const std::string& key, const std::string& value);
  JsonWriter& field(const std::string& key, const char* value);
  JsonWriter& field(const std::string& key, double value);
  JsonWriter& field(const std::string& key, std::int64_t value);
  JsonWriter& field(const std::string& key, std::uint64_t value);
  JsonWriter& field(const std::string& key, bool value);
  JsonWriter& element(double value);     // array element

  [[nodiscard]] const std::string& str() const noexcept { return out_; }

 private:
  void comma();
  void key(const std::string& k);
  static std::string escaped(const std::string& s);

  std::string out_;
  std::vector<bool> first_in_scope_;
};

/// One named group of timed trials inside a report (e.g. "n=1000 f=5").
struct TrialGroup {
  std::string label;
  std::vector<double> trial_ms;                       // indexed by trial
  std::vector<std::pair<std::string, double>> metrics;  // aggregate results

  void metric(std::string key, double value) {
    metrics.emplace_back(std::move(key), value);
  }
};

/// Collects a bench's config, trial groups, and aggregate results, then
/// writes BENCH_<name>.json into the working directory.
class BenchReport {
 public:
  explicit BenchReport(std::string name);

  void config(std::string key, std::string value);
  void config(std::string key, std::int64_t value);
  void config(std::string key, double value);

  /// Append a new trial group and return it (stable until the next call).
  TrialGroup& group(std::string label);

  /// Top-level aggregate result.
  void result(std::string key, double value);

  /// Write BENCH_<name>.json and print a one-line pointer to stdout.
  void write() const;

 private:
  enum class ConfigKind { kString, kInt, kDouble };
  struct ConfigEntry {
    std::string key;
    ConfigKind kind;
    std::string s;
    std::int64_t i{0};
    double d{0.0};
  };

  std::string name_;
  std::vector<ConfigEntry> config_;
  std::vector<TrialGroup> groups_;
  std::vector<std::pair<std::string, double>> results_;
};

/// Run `n` timed trials through the shared pool (or `pool` if given — a
/// ThreadPool(1) makes sense for wall-clock benches whose per-trial timings
/// must not contend): fn(trial, rng) with the engine's deterministic
/// per-trial seeding. Per-trial wall times land in group.trial_ms.
/// Statistical outputs must go into per-trial slots owned by the caller and
/// be reduced after this returns.
void timed_trials(TrialGroup& group, std::size_t n, std::uint64_t base_seed,
                  const std::function<void(std::size_t, Rng&)>& fn,
                  ThreadPool* pool = nullptr);

/// One self-contained deployment a fork trial runs on: the coordinator
/// mutates its network during an execution, so concurrent trials need
/// disjoint deployments. Factories build them; forked_timed_trials()
/// recycles them through a free list.
struct ForkDeployment {
  std::unique_ptr<Network> net;
  std::unique_ptr<Adversary> adversary;  ///< may be null (no attack)
  std::unique_ptr<VmatCoordinator> coordinator;
};

/// Builds one ForkDeployment. Must be deterministic (same seed, same
/// malicious set every call): the shared snapshot is captured from one
/// factory product and restored into the others, and the fingerprint check
/// rejects any drift.
using ForkFactory = std::function<std::unique_ptr<ForkDeployment>()>;

/// One fork trial body: finish the execution from `snapshot` (resume_from /
/// resume_min on fork.coordinator). Strategies may diverge per trial via
/// set_adversary(), but the malicious *set* is fixed by the factory.
using ForkTrialFn = std::function<void(
    std::size_t trial, Rng& rng, ForkDeployment& fork, const Snapshot& snapshot)>;

/// Fork-fan-out twin of timed_trials(): capture the post-formation prefix
/// ONCE from a factory-built deployment, then run `n` timed trials that
/// each resume from that shared snapshot on a recycled deployment. With
/// VMAT_SNAPSHOT=0 the sharing is disabled — every trial builds a private
/// deployment and resumes from its own freshly captured snapshot, which is
/// bit-identical to the shared one (same factory, same seed), so results
/// never depend on the escape hatch. Timings cover fn only (construction
/// and capture are untimed in both modes).
void forked_timed_trials(TrialGroup& group, std::size_t n,
                         std::uint64_t base_seed, const ForkFactory& factory,
                         const ForkTrialFn& fn, ThreadPool* pool = nullptr);

/// Flatten a flight-recorder metrics snapshot into per-phase group metrics
/// ("<phase>.bytes_kb", "<phase>.frames", "<phase>.mac_verifies",
/// "<phase>.predicate_tests" for phases with activity, plus totals) so
/// every BENCH_*.json carries the typed per-phase cost breakdown.
void add_phase_metrics(TrialGroup& group, const ExecutionMetrics& metrics);

}  // namespace vmat::bench
