// ABL-MULTI — ablation for Section IV-D: single-path (TAG-style) vs
// multi-path (synopsis-diffusion-style ring) aggregation under silent
// droppers.
//
// With multiple parents per sensor, the minimum usually routes around a
// dropper, so far fewer executions need the (expensive) pinpointing path
// at all. We measure the fraction of first executions disrupted across
// random dropper placements, and the average pinpointing rounds paid per
// query.
//
// Not eligible for snapshot-fork / epoch reuse: every trial draws a fresh
// dropper placement, and the malicious set must be fixed at formation time
// for a shared snapshot (the fork contract) — each placement genuinely
// needs its own tree.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "attack/strategies.h"
#include "core/coordinator.h"
#include "trial_runner.h"
#include "util/stats.h"

namespace {

vmat::NetworkSpec bench_keys(std::uint64_t seed) {
  vmat::NetworkSpec cfg;
  cfg.keys.pool_size = 400;
  cfg.keys.ring_size = 120;
  cfg.keys.seed = seed;
  return cfg;
}

struct Row {
  int disrupted{0};
  int trials{0};
  double pinpoint_rounds{0.0};
};

Row run(bool multipath, std::uint32_t f, std::size_t trials,
        vmat::bench::TrialGroup& group) {
  // Per-trial slots, reduced serially below. Each trial keeps the seed
  // scheme 100 + t, so placements match the historical tables exactly.
  std::vector<std::uint8_t> disrupted(trials, 0);
  std::vector<int> rounds(trials, 0);

  vmat::bench::timed_trials(
      group, trials, 0, [&](std::size_t t, vmat::Rng&) {
        const std::uint64_t seed = 100 + static_cast<std::uint64_t>(t);
        const auto topo = vmat::Topology::grid(6, 6);
        const auto malicious = vmat::choose_malicious(topo, f, seed);
        vmat::Network net(topo, bench_keys(seed));
        vmat::Adversary adv(&net, malicious,
                            std::make_unique<vmat::SilentDropStrategy>(
                                vmat::LiePolicy::kDenyAll));
        vmat::CoordinatorSpec cfg;
        cfg.depth_bound = topo.depth(malicious);
        cfg.multipath = multipath;
        cfg.seed = seed;
        vmat::VmatCoordinator coordinator(&net, &adv, cfg);

        std::vector<vmat::Reading> readings(36);
        for (std::uint32_t id = 0; id < 36; ++id)
          readings[id] = 100 + static_cast<vmat::Reading>(id);
        // Put the minimum at the deepest honest sensor so it has the
        // longest gauntlet to run.
        const auto depth = topo.bfs_depth(malicious);
        std::uint32_t deepest = 1;
        for (std::uint32_t id = 1; id < 36; ++id)
          if (!malicious.contains(vmat::NodeId{id}) &&
              depth[id] > depth[deepest])
            deepest = id;
        readings[deepest] = 1;

        const auto out = coordinator.run_min(readings);
        if (!out.produced_result()) {
          disrupted[t] = 1;
          rounds[t] = out.pinpoint_cost.flooding_rounds;
        }
      });

  Row row;
  row.trials = static_cast<int>(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    row.disrupted += disrupted[t];
    row.pinpoint_rounds += rounds[t];
  }
  row.pinpoint_rounds /= static_cast<double>(trials);
  return row;
}

}  // namespace

int main() {
  const std::size_t n_trials = vmat::bench::trials(40);
  std::printf(
      "ABL-MULTI | Section IV-D: single-path vs multi-path aggregation "
      "under silent droppers (grid 6x6, min at\nthe deepest honest sensor, "
      "%zu random placements per row)\n\n",
      n_trials);

  vmat::bench::BenchReport report("ablation_multipath");
  report.config("trials", static_cast<std::int64_t>(n_trials));

  vmat::TablePrinter table({"f droppers", "mode", "first execution disrupted",
                            "avg pinpoint rounds/query"});
  for (const std::uint32_t f : {1u, 2u, 4u}) {
    for (const bool multipath : {false, true}) {
      auto& group =
          report.group(std::string(multipath ? "multi" : "single") +
                       "-path f=" + std::to_string(f));
      const Row row = run(multipath, f, n_trials, group);
      group.metric("disrupted", row.disrupted);
      group.metric("avg_pinpoint_rounds", row.pinpoint_rounds);
      table.add_row({std::to_string(f),
                     multipath ? "multi-path" : "single-path",
                     std::to_string(row.disrupted) + "/" +
                         std::to_string(row.trials),
                     vmat::TablePrinter::fmt(row.pinpoint_rounds, 1)});
    }
  }
  table.print();
  report.write();

  std::printf(
      "\nShape checks vs paper: ring aggregation routes the minimum around "
      "droppers, so multi-path rows show\nfar fewer disrupted executions "
      "and a near-zero expected pinpointing bill.\n");
  return 0;
}
