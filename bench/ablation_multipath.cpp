// ABL-MULTI — ablation for Section IV-D: single-path (TAG-style) vs
// multi-path (synopsis-diffusion-style ring) aggregation under silent
// droppers.
//
// With multiple parents per sensor, the minimum usually routes around a
// dropper, so far fewer executions need the (expensive) pinpointing path
// at all. We measure the fraction of first executions disrupted across
// random dropper placements, and the average pinpointing rounds paid per
// query.
#include <cstdio>
#include <memory>

#include "attack/strategies.h"
#include "core/coordinator.h"
#include "util/stats.h"

namespace {

vmat::NetworkConfig bench_keys(std::uint64_t seed) {
  vmat::NetworkConfig cfg;
  cfg.keys.pool_size = 400;
  cfg.keys.ring_size = 120;
  cfg.keys.seed = seed;
  return cfg;
}

struct Row {
  int disrupted{0};
  int trials{0};
  double pinpoint_rounds{0.0};
};

Row run(bool multipath, std::uint32_t f, int trials) {
  Row row;
  row.trials = trials;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = 100 + static_cast<std::uint64_t>(t);
    const auto topo = vmat::Topology::grid(6, 6);
    const auto malicious = vmat::choose_malicious(topo, f, seed);
    vmat::Network net(topo, bench_keys(seed));
    vmat::Adversary adv(&net, malicious,
                        std::make_unique<vmat::SilentDropStrategy>(
                            vmat::LiePolicy::kDenyAll));
    vmat::VmatConfig cfg;
    cfg.depth_bound = topo.depth(malicious);
    cfg.multipath = multipath;
    cfg.seed = seed;
    vmat::VmatCoordinator coordinator(&net, &adv, cfg);

    std::vector<vmat::Reading> readings(36);
    for (std::uint32_t id = 0; id < 36; ++id)
      readings[id] = 100 + static_cast<vmat::Reading>(id);
    // Put the minimum at the deepest honest sensor so it has the longest
    // gauntlet to run.
    const auto depth = topo.bfs_depth(malicious);
    std::uint32_t deepest = 1;
    for (std::uint32_t id = 1; id < 36; ++id)
      if (!malicious.contains(vmat::NodeId{id}) &&
          depth[id] > depth[deepest])
        deepest = id;
    readings[deepest] = 1;

    const auto out = coordinator.run_min(readings);
    if (!out.produced_result()) {
      ++row.disrupted;
      row.pinpoint_rounds += out.pinpoint_cost.flooding_rounds;
    }
  }
  row.pinpoint_rounds /= trials;
  return row;
}

}  // namespace

int main() {
  std::printf(
      "ABL-MULTI | Section IV-D: single-path vs multi-path aggregation "
      "under silent droppers (grid 6x6, min at\nthe deepest honest sensor, "
      "40 random placements per row)\n\n");

  vmat::TablePrinter table({"f droppers", "mode", "first execution disrupted",
                            "avg pinpoint rounds/query"});
  for (const std::uint32_t f : {1u, 2u, 4u}) {
    for (const bool multipath : {false, true}) {
      const Row row = run(multipath, f, 40);
      table.add_row({std::to_string(f),
                     multipath ? "multi-path" : "single-path",
                     std::to_string(row.disrupted) + "/" +
                         std::to_string(row.trials),
                     vmat::TablePrinter::fmt(row.pinpoint_rounds, 1)});
    }
  }
  table.print();

  std::printf(
      "\nShape checks vs paper: ring aggregation routes the minimum around "
      "droppers, so multi-path rows show\nfar fewer disrupted executions "
      "and a near-zero expected pinpointing bill.\n");
  return 0;
}
