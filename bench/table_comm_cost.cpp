// TXT-COMM — reproduces the Section IX communication comparison: VMAT's
// synopsis-based aggregation moves ~2.4-3.2 KB of payload per query,
// against >= 80 KB for the naive "send every MAC'd reading to the base
// station" approach at n = 10,000 — one to two orders of magnitude.
//
// Two views:
//  * modeled: per-query payload of m synopses vs n records, as the paper
//    counts it;
//  * measured: actual fabric bytes of a full VMAT execution vs the
//    convergecast baseline on the same simulated topology, including the
//    hottest single relay (the radio that burns out first).
#include <cstdio>

#include "baseline/send_all.h"
#include "core/coordinator.h"
#include "core/query.h"
#include "sim/fabric.h"
#include "sim/network.h"
#include "util/stats.h"

namespace {

/// On-wire bytes of one synopsis record in our encoding: origin(4) +
/// instance(4) + value(8) + weight(8) + MAC(8).
constexpr std::uint64_t kSynopsisBytes = 32;
constexpr std::uint64_t kRecordBytes = 20;  // id + reading + MAC
constexpr std::uint32_t kInstances = 100;

vmat::NetworkSpec bench_keys() {
  vmat::NetworkSpec cfg;
  cfg.keys.pool_size = 400;
  cfg.keys.ring_size = 120;
  cfg.keys.seed = 77;
  return cfg;
}

}  // namespace

int main() {
  std::printf(
      "TXT-COMM | Section IX: per-query communication, VMAT (m=%u synopses) "
      "vs naive send-all\n\n",
      kInstances);

  {
    vmat::TablePrinter table({"n sensors", "VMAT payload (KB)",
                              "send-all payload (KB)", "ratio"});
    for (const std::uint32_t n : {100u, 1000u, 10000u, 100000u}) {
      const double vmat_kb =
          static_cast<double>(kInstances * kSynopsisBytes) / vmat::kBytesPerKb;
      const double naive_kb =
          static_cast<double>(n) * kRecordBytes / vmat::kBytesPerKb;
      table.add_row({std::to_string(n), vmat::TablePrinter::fmt(vmat_kb, 1),
                     vmat::TablePrinter::fmt(naive_kb, 1),
                     vmat::TablePrinter::fmt(naive_kb / vmat_kb, 1)});
    }
    std::printf("modeled (paper's counting; records: %lu B, synopsis: %lu B):\n",
                static_cast<unsigned long>(kRecordBytes),
                static_cast<unsigned long>(kSynopsisBytes));
    table.print();
    std::printf("\n");
  }

  {
    // The battery-relevant metric is the *hottest sensor*: with send-all,
    // the relays next to the base station carry Θ(n) records; with VMAT a
    // sensor's cost is bounded by its degree times the bundle size,
    // independent of n.
    vmat::TablePrinter table({"n", "VMAT hottest-node KB",
                              "send-all hottest-node KB", "ratio"});
    for (const std::uint32_t side : {10u, 17u, 24u}) {
      const std::uint32_t n = side * side;
      vmat::Network net(vmat::Topology::grid(side, side), bench_keys());

      // Measured VMAT execution with m synopses.
      vmat::CoordinatorSpec cfg;
      cfg.instances = kInstances;
      vmat::VmatCoordinator coordinator(&net, nullptr, cfg);
      vmat::QueryEngine queries(&coordinator);
      std::vector<std::uint8_t> predicate(n, 1);
      predicate[0] = 0;
      (void)queries.count(predicate);
      std::uint64_t vmat_hottest = 0;
      for (std::uint32_t id = 1; id < n; ++id) {
        const auto node_bytes = net.fabric().bytes_sent(vmat::NodeId{id}) +
                                net.fabric().bytes_received(vmat::NodeId{id});
        vmat_hottest = std::max(vmat_hottest, node_bytes);
      }

      std::vector<vmat::Reading> readings(n, 100);
      const auto send_all = vmat::run_send_all(net, readings);

      const double vmat_kb = static_cast<double>(vmat_hottest) / vmat::kBytesPerKb;
      const double naive_kb =
          static_cast<double>(send_all.max_node_bytes) / vmat::kBytesPerKb;
      table.add_row({std::to_string(n), vmat::TablePrinter::fmt(vmat_kb, 1),
                     vmat::TablePrinter::fmt(naive_kb, 1),
                     vmat::TablePrinter::fmt(naive_kb / vmat_kb, 2)});
    }
    std::printf(
        "measured on simulated grids (hottest sensor per query; VMAT side "
        "includes tree formation,\nbundles, and confirmation):\n");
    table.print();
  }

  std::printf(
      "\nShape checks vs paper: VMAT per-query payload is constant in n; "
      "send-all grows linearly,\nreaching one-two orders of magnitude more "
      "by n = 10,000 (80 KB vs 2.4 KB in the paper's units).\n");
  return 0;
}
