// SCALE — infrastructure bench: wall-clock cost of full VMAT executions as
// the network grows, clean and attacked, plus per-execution message
// volume. Not a paper figure; it documents that the simulator comfortably
// hosts the paper's parameter ranges.
//
// Timing discipline: each (size, mode) cell runs bench::trials(3) repeats
// through the trial engine on a dedicated serial pool — wall-clock numbers
// must not contend with each other — and the table reports the minimum,
// the usual noise-robust choice for repeat timings.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "attack/strategies.h"
#include "core/coordinator.h"
#include "sim/fabric.h"
#include "trial_runner.h"
#include "util/stats.h"

namespace {

/// Pre-PR serial reference for the acceptance gate: clean n=4000 execution
/// wall time of the per-node serial slot loop with per-Envelope heap
/// payloads, measured at the commit preceding the arena/level-parallel
/// work on the reference box (RelWithDebInfo, min of 3). Override with
/// VMAT_BENCH_PREPR_MS when re-baselining on different hardware.
constexpr double kPrePrSerialN4000Ms = 47.63;

vmat::NetworkSpec bench_keys(std::uint64_t seed) {
  vmat::NetworkSpec cfg;
  cfg.keys.pool_size = 1000;
  cfg.keys.ring_size = 180;
  cfg.keys.seed = seed;
  return cfg;
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Min-of-3 clean execution wall time at `n` under a forced
/// intra-execution thread count.
double gate_exec_ms(const vmat::Topology& topo, std::uint32_t n,
                    std::size_t exec_threads) {
  vmat::set_intra_execution_threads(exec_threads);
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    vmat::Network net(topo, bench_keys(n));
    vmat::VmatCoordinator coordinator(&net, nullptr, vmat::CoordinatorSpec{});
    std::vector<vmat::Reading> readings(n, 500);
    const auto start = std::chrono::steady_clock::now();
    const auto out = coordinator.run_min(readings);
    best = std::min(best, ms_since(start));
    if (out.kind != vmat::OutcomeKind::kResult) std::abort();
  }
  vmat::set_intra_execution_threads(0);
  return best;
}

/// VMAT_BENCH_ACCEPT=1: the PR's acceptance gate. Clean n=4000 must run
/// >= 1.2x faster single-threaded than the pre-PR serial path (arena +
/// MacBatch alone), and >= 3x faster with all cores when the machine has
/// at least 4 of them. Non-zero exit on a miss.
int run_acceptance_gate() {
  constexpr std::uint32_t n = 4000;
  double pre_pr_ms = kPrePrSerialN4000Ms;
  if (const char* env = std::getenv("VMAT_BENCH_PREPR_MS"))
    pre_pr_ms = std::atof(env);
  std::printf("SCALE acceptance gate | clean n=%u vs pre-PR serial %.2f ms\n",
              n, pre_pr_ms);
  const double radius = 1.8 / std::sqrt(static_cast<double>(n));
  const auto topo = vmat::Topology::random_geometric(n, radius, 7);

  bool ok = true;
  const double single_ms = gate_exec_ms(topo, n, 1);
  const double single_speedup = pre_pr_ms / single_ms;
  const bool single_ok = single_speedup >= 1.2;
  std::printf("  single-thread: %.2f ms, %.2fx vs pre-PR (need >= 1.20x)  %s\n",
              single_ms, single_speedup, single_ok ? "PASS" : "FAIL");
  ok = ok && single_ok;

  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (hw >= 4) {
    const double multi_ms = gate_exec_ms(topo, n, hw);
    const double multi_speedup = pre_pr_ms / multi_ms;
    const bool multi_ok = multi_speedup >= 3.0;
    std::printf(
        "  %zu threads:    %.2f ms, %.2fx vs pre-PR (need >= 3.00x)  %s\n",
        hw, multi_ms, multi_speedup, multi_ok ? "PASS" : "FAIL");
    ok = ok && multi_ok;
  } else {
    std::printf("  multi-thread:  SKIP (%zu core%s < 4)\n", hw,
                hw == 1 ? "" : "s");
  }
  std::printf("SCALE acceptance gate: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main() {
  if (const char* env = std::getenv("VMAT_BENCH_ACCEPT");
      env != nullptr && *env != '\0' && std::string(env) != "0")
    return run_acceptance_gate();

  const std::size_t n_trials = vmat::bench::trials(3);
  std::printf(
      "SCALE | full-execution wall time and traffic vs network size "
      "(min over %zu repeats)\n\n",
      n_trials);

  // Attacked cells stop at 800: a pinpointing walk at n=4000+ costs many
  // full executions and adds nothing the smaller cells don't show — the
  // table prints an explicit "—" there, and VMAT_BENCH_FULL=1 buys one
  // attacked n=4000 cell for anyone who wants the walk measured anyway.
  const bool full = [] {
    const char* env = std::getenv("VMAT_BENCH_FULL");
    return env != nullptr && *env != '\0' && std::string(env) != "0";
  }();
  const std::uint32_t max_attacked_size = full ? 4000u : 800u;
  std::vector<std::uint32_t> sizes = {50u,   100u,  200u,    400u,
                                      800u,  4000u, 8000u, 100000u};
  if (vmat::bench::smoke()) sizes = {50u, 100u};

  vmat::bench::BenchReport report("bench_scale");
  report.config("repeats", static_cast<std::int64_t>(n_trials));
  report.config("sizes", static_cast<std::int64_t>(sizes.size()));

  // Repeats of one cell measure the same deterministic execution, so they
  // must run strictly serially for the timings to mean anything.
  vmat::ThreadPool serial(1);

  vmat::TablePrinter table({"n", "L", "clean exec ms", "clean KB",
                            "attacked exec ms", "pinpoint tests"});
  for (const std::uint32_t n : sizes) {
    const double radius = vmat::Topology::connected_radius(n);
    const auto topo = vmat::Topology::random_geometric(n, radius, 7);
    // The big cells keep only the CSR adjacency (see bench_memory): the
    // nested lists would dominate the topology's footprint at n >= 10^5.
    if (n >= 50000) topo.shed_adjacency();

    // Guarantee the attack bites: find a deep node whose entire depth-1
    // neighborhood can go malicious without partitioning the honest
    // subgraph, and plant the minimum reading there. Only needed for the
    // attacked cell, which the big sizes skip.
    std::unordered_set<vmat::NodeId> malicious;
    std::uint32_t victim = 0;
    if (n <= max_attacked_size) {
      const auto depth = topo.bfs_depth();
      std::vector<std::uint32_t> by_depth(n);
      for (std::uint32_t i = 0; i < n; ++i) by_depth[i] = i;
      std::sort(by_depth.begin(), by_depth.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  return depth[a] > depth[b];
                });
      for (std::uint32_t candidate : by_depth) {
        if (depth[candidate] < 2) break;
        std::unordered_set<vmat::NodeId> cut;
        for (vmat::NodeId v : topo.neighbors(vmat::NodeId{candidate}))
          if (depth[v.value] == depth[candidate] - 1) cut.insert(v);
        if (!cut.empty() && topo.connected(cut)) {
          malicious = std::move(cut);
          victim = candidate;
          break;
        }
      }
    }

    // Clean runs. trial_ms includes network setup; the table's "exec ms"
    // column keeps the historical meaning (run_min only), measured inside
    // each trial.
    std::uint64_t clean_bytes = 0;
    vmat::Level depth_bound = 0;
    vmat::ExecutionMetrics clean_metrics;
    std::vector<double> clean_exec(n_trials, 0.0);
    auto& clean_group = report.group("clean n=" + std::to_string(n));
    vmat::bench::timed_trials(
        clean_group, n_trials, 0,
        [&](std::size_t t, vmat::Rng&) {
          vmat::Network net(topo, bench_keys(n));
          vmat::VmatCoordinator coordinator(&net, nullptr, vmat::CoordinatorSpec{});
          std::vector<vmat::Reading> readings(n, 500);
          const auto start = std::chrono::steady_clock::now();
          const auto out = coordinator.run_min(readings);
          clean_exec[t] = ms_since(start);
          clean_bytes = out.fabric_bytes;
          clean_metrics = out.metrics;
          depth_bound = coordinator.effective_depth_bound();
        },
        &serial);
    const double clean_ms = vmat::percentile_nearest_rank(clean_exec, 0);
    clean_group.metric("exec_ms_min", clean_ms);
    clean_group.metric("fabric_kb", clean_bytes / vmat::kBytesPerKb);
    vmat::bench::add_phase_metrics(clean_group, clean_metrics);

    // Attacked runs: the victim's whole parent set silently drops its
    // minimum, forcing a veto and a pinpointing walk. Above the attacked
    // ceiling the cells are deliberately absent, not zero.
    std::string attacked_ms_cell = "\xe2\x80\x94";  // — em dash
    std::string tests_cell = "\xe2\x80\x94";
    if (n <= max_attacked_size) {
      int tests = 0;
      vmat::ExecutionMetrics attacked_metrics;
      std::vector<double> attacked_exec(n_trials, 0.0);
      auto& attacked_group = report.group("attacked n=" + std::to_string(n));
      vmat::bench::timed_trials(
          attacked_group, n_trials, 0,
          [&](std::size_t t, vmat::Rng&) {
            vmat::Network net(topo, bench_keys(n));
            vmat::Adversary adv(&net, malicious,
                                std::make_unique<vmat::SilentDropStrategy>(
                                    vmat::LiePolicy::kDenyAll));
            vmat::CoordinatorSpec cfg;
            cfg.depth_bound = topo.depth(malicious);
            vmat::VmatCoordinator coordinator(&net, &adv, cfg);
            std::vector<vmat::Reading> readings(n, 500);
            for (std::uint32_t id = 1; id < n; ++id)
              readings[id] = 500 + static_cast<vmat::Reading>(id);
            readings[victim] = 1;
            const auto start = std::chrono::steady_clock::now();
            const auto out = coordinator.run_min(readings);
            attacked_exec[t] = ms_since(start);
            tests = out.pinpoint_cost.predicate_tests;
            attacked_metrics = out.metrics;
          },
          &serial);
      const double attacked_ms = vmat::percentile_nearest_rank(attacked_exec, 0);
      attacked_group.metric("exec_ms_min", attacked_ms);
      attacked_group.metric("pinpoint_tests", tests);
      vmat::bench::add_phase_metrics(attacked_group, attacked_metrics);
      attacked_ms_cell = vmat::TablePrinter::fmt(attacked_ms, 1);
      tests_cell = std::to_string(tests);
    }

    table.add_row({std::to_string(n), std::to_string(depth_bound),
                   vmat::TablePrinter::fmt(clean_ms, 1),
                   vmat::TablePrinter::fmt(clean_bytes / vmat::kBytesPerKb, 1),
                   attacked_ms_cell, tests_cell});
  }
  table.print();
  std::printf(
      "\n\"%s\" = attacked cell not run: pinpointing above n=%u costs many "
      "full executions%s.\n",
      "\xe2\x80\x94", max_attacked_size,
      full ? "" : " (VMAT_BENCH_FULL=1 adds the attacked n=4000 cell)");
  report.write();
  return 0;
}
