// SCALE — infrastructure bench: wall-clock cost of full VMAT executions as
// the network grows, clean and attacked, plus per-execution message
// volume. Not a paper figure; it documents that the simulator comfortably
// hosts the paper's parameter ranges.
//
// Timing discipline: each (size, mode) cell runs bench::trials(3) repeats
// through the trial engine on a dedicated serial pool — wall-clock numbers
// must not contend with each other — and the table reports the minimum,
// the usual noise-robust choice for repeat timings.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "attack/strategies.h"
#include "core/coordinator.h"
#include "sim/fabric.h"
#include "trial_runner.h"
#include "util/stats.h"

namespace {

vmat::NetworkSpec bench_keys(std::uint64_t seed) {
  vmat::NetworkSpec cfg;
  cfg.keys.pool_size = 1000;
  cfg.keys.ring_size = 180;
  cfg.keys.seed = seed;
  return cfg;
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  const std::size_t n_trials = vmat::bench::trials(3);
  std::printf(
      "SCALE | full-execution wall time and traffic vs network size "
      "(min over %zu repeats)\n\n",
      n_trials);

  std::vector<std::uint32_t> sizes = {50u, 100u, 200u, 400u, 800u};
  if (vmat::bench::smoke()) sizes = {50u, 100u};

  vmat::bench::BenchReport report("bench_scale");
  report.config("repeats", static_cast<std::int64_t>(n_trials));
  report.config("sizes", static_cast<std::int64_t>(sizes.size()));

  // Repeats of one cell measure the same deterministic execution, so they
  // must run strictly serially for the timings to mean anything.
  vmat::ThreadPool serial(1);

  vmat::TablePrinter table({"n", "L", "clean exec ms", "clean KB",
                            "attacked exec ms", "pinpoint tests"});
  for (const std::uint32_t n : sizes) {
    const double radius = 1.8 / std::sqrt(static_cast<double>(n));
    const auto topo = vmat::Topology::random_geometric(n, radius, 7);

    // Guarantee the attack bites: find a deep node whose entire depth-1
    // neighborhood can go malicious without partitioning the honest
    // subgraph, and plant the minimum reading there.
    const auto depth = topo.bfs_depth();
    std::unordered_set<vmat::NodeId> malicious;
    std::uint32_t victim = 0;
    std::vector<std::uint32_t> by_depth(n);
    for (std::uint32_t i = 0; i < n; ++i) by_depth[i] = i;
    std::sort(by_depth.begin(), by_depth.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return depth[a] > depth[b];
              });
    for (std::uint32_t candidate : by_depth) {
      if (depth[candidate] < 2) break;
      std::unordered_set<vmat::NodeId> cut;
      for (vmat::NodeId v : topo.neighbors(vmat::NodeId{candidate}))
        if (depth[v.value] == depth[candidate] - 1) cut.insert(v);
      if (!cut.empty() && topo.connected(cut)) {
        malicious = std::move(cut);
        victim = candidate;
        break;
      }
    }

    // Clean runs. trial_ms includes network setup; the table's "exec ms"
    // column keeps the historical meaning (run_min only), measured inside
    // each trial.
    std::uint64_t clean_bytes = 0;
    vmat::Level depth_bound = 0;
    vmat::ExecutionMetrics clean_metrics;
    std::vector<double> clean_exec(n_trials, 0.0);
    auto& clean_group = report.group("clean n=" + std::to_string(n));
    vmat::bench::timed_trials(
        clean_group, n_trials, 0,
        [&](std::size_t t, vmat::Rng&) {
          vmat::Network net(topo, bench_keys(n));
          vmat::VmatCoordinator coordinator(&net, nullptr, vmat::CoordinatorSpec{});
          std::vector<vmat::Reading> readings(n, 500);
          const auto start = std::chrono::steady_clock::now();
          const auto out = coordinator.run_min(readings);
          clean_exec[t] = ms_since(start);
          clean_bytes = out.fabric_bytes;
          clean_metrics = out.metrics;
          depth_bound = coordinator.effective_depth_bound();
        },
        &serial);
    const double clean_ms = vmat::percentile(clean_exec, 0);
    clean_group.metric("exec_ms_min", clean_ms);
    clean_group.metric("fabric_kb", clean_bytes / vmat::kBytesPerKb);
    vmat::bench::add_phase_metrics(clean_group, clean_metrics);

    // Attacked runs: the victim's whole parent set silently drops its
    // minimum, forcing a veto and a pinpointing walk.
    int tests = 0;
    vmat::ExecutionMetrics attacked_metrics;
    std::vector<double> attacked_exec(n_trials, 0.0);
    auto& attacked_group = report.group("attacked n=" + std::to_string(n));
    vmat::bench::timed_trials(
        attacked_group, n_trials, 0,
        [&](std::size_t t, vmat::Rng&) {
          vmat::Network net(topo, bench_keys(n));
          vmat::Adversary adv(&net, malicious,
                              std::make_unique<vmat::SilentDropStrategy>(
                                  vmat::LiePolicy::kDenyAll));
          vmat::CoordinatorSpec cfg;
          cfg.depth_bound = topo.depth(malicious);
          vmat::VmatCoordinator coordinator(&net, &adv, cfg);
          std::vector<vmat::Reading> readings(n, 500);
          for (std::uint32_t id = 1; id < n; ++id)
            readings[id] = 500 + static_cast<vmat::Reading>(id);
          readings[victim] = 1;
          const auto start = std::chrono::steady_clock::now();
          const auto out = coordinator.run_min(readings);
          attacked_exec[t] = ms_since(start);
          tests = out.pinpoint_cost.predicate_tests;
          attacked_metrics = out.metrics;
        },
        &serial);
    const double attacked_ms = vmat::percentile(attacked_exec, 0);
    attacked_group.metric("exec_ms_min", attacked_ms);
    attacked_group.metric("pinpoint_tests", tests);
    vmat::bench::add_phase_metrics(attacked_group, attacked_metrics);

    table.add_row({std::to_string(n), std::to_string(depth_bound),
                   vmat::TablePrinter::fmt(clean_ms, 1),
                   vmat::TablePrinter::fmt(clean_bytes / vmat::kBytesPerKb, 1),
                   vmat::TablePrinter::fmt(attacked_ms, 1),
                   std::to_string(tests)});
  }
  table.print();
  report.write();
  return 0;
}
