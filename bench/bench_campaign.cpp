// BENCH-CAMPAIGN — measures what the campaign fuzzer's snapshot forking
// buys: probes/sec with every probe forked from one shared post-formation
// snapshot versus the scratch path that builds a private deployment (and
// re-forms the tree) per probe.
//
// Also asserts the two halves of the snapshot contract the campaign relies
// on: the fork campaign runs exactly ONE tree formation no matter the probe
// budget, and both modes produce bit-identical results (same corpus text,
// same coverage counters, same worst-case table) — only the formation count
// and the wall clock may differ.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "campaign/runner.h"
#include "trial_runner.h"
#include "util/stats.h"

namespace {

vmat::campaign::CampaignConfig bench_config(std::uint32_t probes,
                                            bool fork_probes) {
  vmat::campaign::CampaignConfig config;
  config.spec.nodes(60).topology(vmat::TopologyKind::kGeometric).seed(11);
  config.spec.key_pool(800, 60).revocation_threshold(8);
  config.compromised = 3;
  config.placement_seed = 21;
  config.probes = probes;
  config.seed = 9;
  config.fork_probes = fork_probes;
  return config;
}

struct ModeResult {
  double seconds{0.0};
  std::uint64_t formations{0};
  std::string corpus;
  std::string table;
  std::size_t coverage{0};
};

ModeResult run_mode(std::uint32_t probes, bool fork_probes) {
  const auto start = std::chrono::steady_clock::now();
  vmat::campaign::CampaignRunner runner(bench_config(probes, fork_probes));
  const vmat::campaign::CampaignResult result = runner.run();
  const auto stop = std::chrono::steady_clock::now();
  ModeResult mode;
  mode.seconds = std::chrono::duration<double>(stop - start).count();
  mode.formations = result.formations;
  mode.corpus = result.corpus.to_text();
  mode.table = result.table();
  mode.coverage = result.coverage_buckets;
  return mode;
}

}  // namespace

int main() {
  const auto probes =
      static_cast<std::uint32_t>(vmat::bench::smoke() ? 8 : 64);
  std::printf(
      "BENCH-CAMPAIGN | campaign probes: shared-snapshot fork vs scratch "
      "deployment per probe (%u probes)\n\n",
      probes);

  vmat::bench::BenchReport report("bench_campaign");
  report.config("probes", static_cast<std::int64_t>(probes));
  report.config("nodes", static_cast<std::int64_t>(60));
  report.config("compromised", static_cast<std::int64_t>(3));

  const ModeResult fork = run_mode(probes, /*fork_probes=*/true);
  const ModeResult scratch = run_mode(probes, /*fork_probes=*/false);

  // The campaign's fork-reuse claim: zero formation rounds per probe after
  // the first. (With VMAT_SNAPSHOT=0 the fork config silently runs the
  // scratch path, so only assert when snapshots are live.)
  if (vmat::snapshots_enabled() && fork.formations != 1) {
    std::fprintf(stderr,
                 "BENCH-CAMPAIGN: fork campaign ran %llu formations "
                 "(expected exactly 1)\n",
                 static_cast<unsigned long long>(fork.formations));
    return 1;
  }
  if (scratch.formations < probes) {
    std::fprintf(stderr,
                 "BENCH-CAMPAIGN: scratch campaign ran %llu formations "
                 "(expected >= one per probe)\n",
                 static_cast<unsigned long long>(scratch.formations));
    return 1;
  }
  // The snapshot contract: identical results, only the formation count (a
  // line of the table) and the wall clock differ.
  if (fork.corpus != scratch.corpus || fork.coverage != scratch.coverage) {
    std::fprintf(stderr,
                 "BENCH-CAMPAIGN: fork and scratch campaigns diverged "
                 "(snapshot contract violated)\n");
    return 1;
  }

  vmat::TablePrinter table(
      {"mode", "probes/sec", "formations", "coverage buckets"});
  table.add_row({"fork", vmat::TablePrinter::fmt(probes / fork.seconds, 1),
                 std::to_string(fork.formations),
                 std::to_string(fork.coverage)});
  table.add_row({"scratch",
                 vmat::TablePrinter::fmt(probes / scratch.seconds, 1),
                 std::to_string(scratch.formations),
                 std::to_string(scratch.coverage)});
  table.print();

  report.result("fork_probes_per_sec", probes / fork.seconds);
  report.result("scratch_probes_per_sec", probes / scratch.seconds);
  report.result("fork_formations", static_cast<double>(fork.formations));
  report.result("scratch_formations",
                static_cast<double>(scratch.formations));
  report.result("speedup", scratch.seconds / fork.seconds);
  report.write();

  std::printf(
      "\nfork mode amortizes the deployment build + tree formation across "
      "the whole budget (%.1fx here);\nboth modes' corpora and coverage "
      "counters are bit-identical — the snapshot contract at work.\n",
      scratch.seconds / fork.seconds);
  return 0;
}
